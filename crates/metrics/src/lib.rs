//! Probability distributions and fidelity metrics.
//!
//! The SuperSim paper quantifies accuracy with the Hellinger fidelity, in
//! two flavours (§VI-C):
//!
//! * on *sparse* distributions (few observed outcomes): Hellinger fidelity
//!   of the complete distributions — [`Distribution::hellinger_fidelity`];
//! * on *dense* distributions (VQA-style): the mean Hellinger fidelity of
//!   the single-qubit marginal distributions — [`mean_marginal_fidelity`].
//!
//! [`Distribution`] is a sparse map from measurement bitstrings to
//! probabilities, suitable for the few-thousand-shot records the paper
//! works with even on 300-qubit circuits. Internally it is keyed by a
//! hash-interned dense id per outcome (see [`intern`]), so accumulation is
//! `O(1)` per touch instead of an ordered-map walk with a key clone; every
//! read path still emits outcomes in lexicographic order, which keeps all
//! downstream float accumulation bit-reproducible and bit-identical to the
//! previous `BTreeMap`-keyed implementation.

pub mod intern;

pub use intern::{InternPool, OutcomeCounts};

use qcir::{Bits, IndexPlan};
use rand::Rng;
use std::sync::OnceLock;

/// A sparse probability distribution over measurement bitstrings.
///
/// Outcomes are interned into dense ids on first touch ([`InternPool`]);
/// probabilities live in a flat id-indexed vector. All iteration and
/// reduction APIs visit outcomes in lexicographic order, independent of
/// insertion order.
///
/// ```
/// use metrics::Distribution;
/// use qcir::Bits;
///
/// let d = Distribution::from_pairs(
///     2,
///     vec![
///         (Bits::parse("00").unwrap(), 0.5),
///         (Bits::parse("11").unwrap(), 0.5),
///     ],
/// );
/// assert!((d.prob(&Bits::parse("00").unwrap()) - 0.5).abs() < 1e-12);
/// assert_eq!(d.marginal(0), [0.5, 0.5]);
/// ```
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct Distribution {
    n_bits: usize,
    pool: InternPool,
    /// `id → probability`, parallel to the pool's key list.
    probs: Vec<f64>,
    /// Lazily-computed sorted-id cache backing [`Distribution::order`];
    /// invalidated whenever the key set grows. Derived state — excluded
    /// from serialization.
    #[serde(skip)]
    order: OnceLock<Vec<u32>>,
}

impl Distribution {
    /// Creates an empty distribution over `n_bits`-bit outcomes.
    pub fn new(n_bits: usize) -> Self {
        Distribution {
            n_bits,
            pool: InternPool::new(),
            probs: Vec::new(),
            order: OnceLock::new(),
        }
    }

    /// Creates an empty distribution sized for roughly `support` outcomes.
    pub fn with_support_capacity(n_bits: usize, support: usize) -> Self {
        Distribution {
            n_bits,
            pool: InternPool::with_capacity(support),
            probs: Vec::with_capacity(support),
            order: OnceLock::new(),
        }
    }

    /// Builds an empirical distribution from measurement samples.
    ///
    /// # Panics
    ///
    /// Panics if a sample width differs from `n_bits`.
    pub fn from_samples(n_bits: usize, samples: &[Bits]) -> Self {
        let mut d = Distribution::new(n_bits);
        if samples.is_empty() {
            return d;
        }
        let w = 1.0 / samples.len() as f64;
        for s in samples {
            d.add_ref(s, w);
        }
        d
    }

    /// Builds a distribution from `(outcome, probability)` pairs, summing
    /// duplicates.
    ///
    /// # Panics
    ///
    /// Panics if an outcome width differs from `n_bits`.
    pub fn from_pairs(n_bits: usize, pairs: Vec<(Bits, f64)>) -> Self {
        let mut d = Distribution::new(n_bits);
        for (b, p) in pairs {
            d.add(b, p);
        }
        d
    }

    /// Number of bits per outcome.
    pub fn n_bits(&self) -> usize {
        self.n_bits
    }

    /// Number of outcomes with recorded (possibly zero) probability.
    pub fn support_len(&self) -> usize {
        self.probs.len()
    }

    /// Returns `true` when no outcome has been recorded.
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// The probability of an outcome (0 when absent).
    pub fn prob(&self, outcome: &Bits) -> f64 {
        self.pool
            .get(outcome)
            .map_or(0.0, |id| self.probs[id as usize])
    }

    /// Adds `p` to the probability of `outcome`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn add(&mut self, outcome: Bits, p: f64) {
        assert_eq!(outcome.len(), self.n_bits, "outcome width mismatch");
        let id = self.pool.intern_owned(outcome) as usize;
        if id == self.probs.len() {
            // First touch: start from an explicit zero so signed zeros
            // behave exactly like the former `or_insert(0.0) += p`.
            self.probs.push(0.0 + p);
            self.order.take();
        } else {
            self.probs[id] += p;
        }
    }

    /// [`Distribution::add`] without taking ownership (the outcome is
    /// cloned only on its first appearance).
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn add_ref(&mut self, outcome: &Bits, p: f64) {
        assert_eq!(outcome.len(), self.n_bits, "outcome width mismatch");
        let id = self.pool.intern(outcome) as usize;
        if id == self.probs.len() {
            self.probs.push(0.0 + p);
            self.order.take();
        } else {
            self.probs[id] += p;
        }
    }

    /// Ids of the recorded outcomes in lexicographic key order — the
    /// deterministic visit order shared by every read path. Computed on
    /// first use and cached until the key set grows, so repeated reads
    /// (per-bit marginals, fidelity sweeps) sort the support once.
    fn order(&self) -> &[u32] {
        self.order.get_or_init(|| self.pool.sorted_ids())
    }

    /// Iterator over `(outcome, probability)` pairs in lexicographic
    /// outcome order (deterministic, which keeps downstream float
    /// accumulation bit-reproducible).
    pub fn iter(&self) -> impl Iterator<Item = (&Bits, f64)> + '_ {
        self.order()
            .iter()
            .map(move |&id| (self.pool.key(id), self.probs[id as usize]))
    }

    /// Sum of all recorded probabilities.
    pub fn total_mass(&self) -> f64 {
        let mut mass = 0.0;
        for &id in self.order() {
            mass += self.probs[id as usize];
        }
        mass
    }

    /// Clamps negative entries to zero and rescales to unit mass.
    ///
    /// Cut reconstruction from sampled fragment data can produce small
    /// negative quasi-probabilities; this is the standard repair. Outcomes
    /// left with zero probability are dropped from the support.
    pub fn clip_and_normalize(&mut self) {
        // Rebuild the pool over the surviving (positive) outcomes; the
        // mass is summed in lexicographic order, matching the ordered-map
        // semantics this type originally had bit for bit.
        let order: Vec<u32> = self.order().to_vec();
        let mut pool = InternPool::with_capacity(self.probs.len());
        let mut probs = Vec::with_capacity(self.probs.len());
        let mut mass = 0.0;
        for id in order {
            let p = self.probs[id as usize];
            if p > 0.0 {
                pool.intern(self.pool.key(id));
                probs.push(p);
                mass += p;
            }
        }
        if mass > 0.0 {
            for p in &mut probs {
                *p /= mass;
            }
        }
        self.pool = pool;
        self.probs = probs;
        self.order = OnceLock::new();
    }

    /// The `[p(bit=0), p(bit=1)]` marginal of one bit position.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= n_bits`.
    pub fn marginal(&self, bit: usize) -> [f64; 2] {
        assert!(bit < self.n_bits, "bit out of range");
        let mut m = [0.0; 2];
        for &id in self.order() {
            m[self.pool.key(id).get(bit) as usize] += self.probs[id as usize];
        }
        m
    }

    /// All single-bit marginals.
    pub fn marginals(&self) -> Vec<[f64; 2]> {
        let mut out = vec![[0.0; 2]; self.n_bits];
        for &id in self.order() {
            let b = self.pool.key(id);
            let p = self.probs[id as usize];
            for (q, m) in out.iter_mut().enumerate() {
                m[b.get(q) as usize] += p;
            }
        }
        out
    }

    /// The joint marginal over a subset of bit positions (in given order).
    ///
    /// # Panics
    ///
    /// Panics if any position is out of range.
    pub fn marginal_subset(&self, bits: &[usize]) -> Distribution {
        // One extraction plan reused across the support, instead of
        // re-deriving the word/shift tables per entry.
        let plan = IndexPlan::new(bits, self.n_bits);
        let mut d = Distribution::new(bits.len());
        for &id in self.order() {
            d.add(plan.extract(self.pool.key(id)), self.probs[id as usize]);
        }
        d
    }

    /// Hellinger fidelity `(Σ_x √(p(x)·q(x)))²` with another distribution.
    ///
    /// Negative quasi-probabilities are clamped to zero for the comparison.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn hellinger_fidelity(&self, other: &Distribution) -> f64 {
        assert_eq!(self.n_bits, other.n_bits, "width mismatch");
        let mut bc = 0.0;
        for &id in self.order() {
            let p = self.probs[id as usize];
            let q = other.prob(self.pool.key(id));
            if p > 0.0 && q > 0.0 {
                bc += (p * q).sqrt();
            }
        }
        bc * bc
    }

    /// Total-variation distance `½·Σ_x |p(x) − q(x)|`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn total_variation(&self, other: &Distribution) -> f64 {
        assert_eq!(self.n_bits, other.n_bits, "width mismatch");
        let mut tv = 0.0;
        for &id in self.order() {
            tv += (self.probs[id as usize] - other.prob(self.pool.key(id))).abs();
        }
        for &id in other.order() {
            let b = other.pool.key(id);
            if self.pool.get(b).is_none() {
                tv += other.probs[id as usize];
            }
        }
        tv / 2.0
    }

    /// Expectation value of a Z-string observable `⟨Π_{q∈subset} Z_q⟩ =
    /// Σ_x p(x)·(−1)^{parity of x over subset}`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn expectation_z(&self, subset: &[usize]) -> f64 {
        for &q in subset {
            assert!(q < self.n_bits, "bit index {q} out of range");
        }
        let mut total = 0.0;
        for &id in self.order() {
            let b = self.pool.key(id);
            let p = self.probs[id as usize];
            let parity = subset.iter().filter(|&&q| b.get(q)).count() % 2;
            total += if parity == 1 { -p } else { p };
        }
        total
    }

    /// Draws `shots` samples (requires non-negative probabilities; mass is
    /// normalized implicitly).
    ///
    /// Zero- and negative-probability entries can never be drawn: the
    /// sampler walks cumulative weights over the strictly positive support
    /// with a binary search per shot.
    ///
    /// # Panics
    ///
    /// Panics when no outcome has strictly positive probability (empty
    /// distribution, or all mass clipped to zero) — any returned outcome
    /// would be a probability-zero event.
    pub fn sample(&self, shots: usize, rng: &mut impl Rng) -> Vec<Bits> {
        // Cumulative weights over the positive support, in lexicographic
        // order so a given RNG stream maps to a deterministic sample
        // sequence.
        let mut support = Vec::new();
        let mut cum = Vec::new();
        let mut total = 0.0;
        for &id in self.order() {
            let p = self.probs[id as usize];
            if p > 0.0 {
                total += p;
                support.push(id);
                cum.push(total);
            }
        }
        assert!(
            total > 0.0,
            "sampling from a distribution with zero total probability mass"
        );
        let mut out = Vec::with_capacity(shots);
        for _ in 0..shots {
            let u = rng.random::<f64>() * total;
            // First cumulative weight ≥ u; the final clamp guards the
            // float edge where u rounds up to the total.
            let k = cum.partition_point(|&c| c < u).min(cum.len() - 1);
            out.push(self.pool.key(support[k]).clone());
        }
        out
    }
}

/// Hellinger fidelity of two binary marginals `[p0, p1]`, `[q0, q1]`.
pub fn binary_hellinger_fidelity(p: [f64; 2], q: [f64; 2]) -> f64 {
    let bc = (p[0].max(0.0) * q[0].max(0.0)).sqrt() + (p[1].max(0.0) * q[1].max(0.0)).sqrt();
    bc * bc
}

/// The paper's dense-distribution accuracy metric: the mean Hellinger
/// fidelity of single-qubit marginal distributions.
///
/// # Panics
///
/// Panics if the two marginal lists have different lengths.
pub fn mean_marginal_fidelity(a: &[[f64; 2]], b: &[[f64; 2]]) -> f64 {
    assert_eq!(a.len(), b.len(), "marginal count mismatch");
    if a.is_empty() {
        return 1.0;
    }
    let total: f64 = a
        .iter()
        .zip(b)
        .map(|(&p, &q)| binary_hellinger_fidelity(p, q))
        .sum();
    total / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bits(s: &str) -> Bits {
        Bits::parse(s).unwrap()
    }

    #[test]
    fn empirical_distribution_counts() {
        let samples = vec![bits("00"), bits("00"), bits("11"), bits("01")];
        let d = Distribution::from_samples(2, &samples);
        assert!((d.prob(&bits("00")) - 0.5).abs() < 1e-12);
        assert!((d.prob(&bits("11")) - 0.25).abs() < 1e-12);
        assert!((d.prob(&bits("10")) - 0.0).abs() < 1e-12);
        assert!((d.total_mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn identical_distributions_have_unit_fidelity() {
        let d = Distribution::from_pairs(2, vec![(bits("00"), 0.3), (bits("11"), 0.7)]);
        assert!((d.hellinger_fidelity(&d) - 1.0).abs() < 1e-12);
        assert!(d.total_variation(&d) < 1e-12);
    }

    #[test]
    fn disjoint_distributions_have_zero_fidelity() {
        let a = Distribution::from_pairs(1, vec![(bits("0"), 1.0)]);
        let b = Distribution::from_pairs(1, vec![(bits("1"), 1.0)]);
        assert_eq!(a.hellinger_fidelity(&b), 0.0);
        assert!((a.total_variation(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hellinger_known_value() {
        // p = (1/2, 1/2), q = (1, 0): BC = √(1/2) ⇒ fidelity = 1/2.
        let a = Distribution::from_pairs(1, vec![(bits("0"), 0.5), (bits("1"), 0.5)]);
        let b = Distribution::from_pairs(1, vec![(bits("0"), 1.0)]);
        assert!((a.hellinger_fidelity(&b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn marginals_and_subsets() {
        let d = Distribution::from_pairs(
            3,
            vec![(bits("000"), 0.25), (bits("110"), 0.25), (bits("111"), 0.5)],
        );
        assert_eq!(d.marginal(0), [0.25, 0.75]);
        assert_eq!(d.marginal(2), [0.5, 0.5]);
        let m = d.marginal_subset(&[0, 1]);
        assert!((m.prob(&bits("11")) - 0.75).abs() < 1e-12);
        assert!((m.prob(&bits("00")) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn clip_and_normalize_repairs_quasiprobabilities() {
        let mut d = Distribution::from_pairs(1, vec![(bits("0"), 0.9), (bits("1"), -0.1)]);
        d.clip_and_normalize();
        assert!((d.prob(&bits("0")) - 1.0).abs() < 1e-12);
        assert_eq!(d.prob(&bits("1")), 0.0);
        assert!((d.total_mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_roundtrip() {
        let d = Distribution::from_pairs(2, vec![(bits("01"), 0.25), (bits("10"), 0.75)]);
        let mut rng = StdRng::seed_from_u64(11);
        let samples = d.sample(8000, &mut rng);
        let e = Distribution::from_samples(2, &samples);
        assert!(d.hellinger_fidelity(&e) > 0.999);
    }

    #[test]
    fn marginal_fidelity_metric() {
        let a = vec![[0.5, 0.5], [1.0, 0.0]];
        let b = vec![[0.5, 0.5], [1.0, 0.0]];
        assert!((mean_marginal_fidelity(&a, &b) - 1.0).abs() < 1e-12);
        let c = vec![[0.5, 0.5], [0.0, 1.0]];
        // Second qubit completely wrong: (1 + 0)/2.
        assert!((mean_marginal_fidelity(&a, &c) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn binary_hellinger_handles_clamping() {
        assert!((binary_hellinger_fidelity([1.0, 0.0], [1.0, -0.001]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn z_string_expectations() {
        // Bell-like: 00 and 11 each 1/2: <Z0 Z1> = +1, <Z0> = 0.
        let d = Distribution::from_pairs(2, vec![(bits("00"), 0.5), (bits("11"), 0.5)]);
        assert!((d.expectation_z(&[0, 1]) - 1.0).abs() < 1e-12);
        assert!(d.expectation_z(&[0]).abs() < 1e-12);
        assert!((d.expectation_z(&[]) - 1.0).abs() < 1e-12);
        // Anticorrelated: 01 and 10: <Z0 Z1> = -1.
        let a = Distribution::from_pairs(2, vec![(bits("01"), 0.5), (bits("10"), 0.5)]);
        assert!((a.expectation_z(&[0, 1]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_distribution_behaviour() {
        let d = Distribution::new(2);
        assert!(d.is_empty());
        assert_eq!(d.total_mass(), 0.0);
        assert_eq!(d.prob(&bits("00")), 0.0);
    }

    #[test]
    fn sample_never_returns_zero_probability_outcomes() {
        // Regression: the former linear-scan sampler could return the
        // first entry on u == 0 even with p == 0, and zero-mass tails via
        // the last-entry fallback. "00" sorts first and "11" last; neither
        // may ever be drawn.
        let d = Distribution::from_pairs(
            2,
            vec![
                (bits("00"), 0.0),
                (bits("01"), 0.5),
                (bits("10"), 0.5),
                (bits("11"), 0.0),
            ],
        );
        let mut rng = StdRng::seed_from_u64(42);
        for s in d.sample(20_000, &mut rng) {
            assert!(
                s == bits("01") || s == bits("10"),
                "sampled zero-probability outcome {s}"
            );
        }
        // Negative quasi-probabilities are equally unsampleable.
        let q = Distribution::from_pairs(1, vec![(bits("0"), -0.25), (bits("1"), 1.0)]);
        for s in q.sample(5_000, &mut rng) {
            assert_eq!(s, bits("1"));
        }
    }

    #[test]
    #[should_panic(expected = "zero total probability mass")]
    fn sample_panics_on_zero_mass() {
        let d = Distribution::from_pairs(1, vec![(bits("0"), 0.0), (bits("1"), 0.0)]);
        let mut rng = StdRng::seed_from_u64(1);
        let _ = d.sample(1, &mut rng);
    }

    #[test]
    #[should_panic(expected = "zero total probability mass")]
    fn sample_panics_on_empty_distribution() {
        let d = Distribution::new(2);
        let mut rng = StdRng::seed_from_u64(1);
        let _ = d.sample(1, &mut rng);
    }

    /// Reference model: the pre-intern `BTreeMap`-keyed implementation,
    /// reproduced verbatim. The interned engine must match it bit for bit
    /// on every operation that feeds float accumulation downstream.
    mod reference {
        use qcir::Bits;
        use std::collections::BTreeMap;

        #[derive(Default)]
        pub struct Model {
            pub probs: BTreeMap<Bits, f64>,
        }

        impl Model {
            pub fn add(&mut self, b: Bits, p: f64) {
                *self.probs.entry(b).or_insert(0.0) += p;
            }

            pub fn total_mass(&self) -> f64 {
                self.probs.values().sum()
            }

            pub fn marginal(&self, n_bits: usize, bit: usize) -> [f64; 2] {
                let _ = n_bits;
                let mut m = [0.0; 2];
                for (b, &p) in &self.probs {
                    m[b.get(bit) as usize] += p;
                }
                m
            }

            pub fn clip_and_normalize(&mut self) {
                self.probs.retain(|_, p| {
                    if *p < 0.0 {
                        *p = 0.0;
                    }
                    *p > 0.0
                });
                let mass = self.total_mass();
                if mass > 0.0 {
                    for p in self.probs.values_mut() {
                        *p /= mass;
                    }
                }
            }
        }
    }

    /// Property: random interleaved add/merge sequences produce a
    /// distribution bit-identical to the ordered-map reference — same
    /// support, same iteration order, same float values (no tolerance).
    #[test]
    fn interned_distribution_matches_btreemap_reference_bit_exact() {
        let n_bits = 6;
        let mut rng = StdRng::seed_from_u64(2024);
        for _case in 0..200 {
            let mut d = Distribution::new(n_bits);
            let mut model = reference::Model::default();
            // Random adds, with deliberate key reuse and signed weights.
            let ops = 1 + (rng.random::<u64>() % 64) as usize;
            for _ in 0..ops {
                let key = Bits::from_u64(rng.random::<u64>() % 16, n_bits);
                let w = (rng.random::<f64>() - 0.4) * 0.3;
                d.add(key.clone(), w);
                model.add(key, w);
            }
            // Merge a second batch through add_ref (the borrow path).
            for _ in 0..ops / 2 {
                let key = Bits::from_u64(rng.random::<u64>() % 16, n_bits);
                let w = rng.random::<f64>() * 0.1;
                d.add_ref(&key, w);
                model.add(key, w);
            }
            let check = |d: &Distribution, model: &reference::Model, stage: &str| {
                assert_eq!(d.support_len(), model.probs.len(), "{stage}: support");
                for ((db, dp), (mb, &mp)) in d.iter().zip(model.probs.iter()) {
                    assert_eq!(db, mb, "{stage}: iteration order");
                    assert!(
                        dp == mp || (dp.is_nan() && mp.is_nan()),
                        "{stage}: value at {db}: {dp} vs {mp}"
                    );
                }
                assert!(d.total_mass() == model.total_mass(), "{stage}: mass");
                for bit in 0..n_bits {
                    assert_eq!(
                        d.marginal(bit),
                        model.marginal(n_bits, bit),
                        "{stage}: marginal"
                    );
                }
            };
            check(&d, &model, "accumulated");
            d.clip_and_normalize();
            model.clip_and_normalize();
            check(&d, &model, "normalized");
        }
    }

    #[test]
    fn marginal_subset_matches_per_entry_extract() {
        let mut rng = StdRng::seed_from_u64(9);
        let n_bits = 70; // multi-word keys
        let mut d = Distribution::new(n_bits);
        for _ in 0..40 {
            let mut b = Bits::zeros(n_bits);
            for i in 0..n_bits {
                b.set(i, rng.random::<bool>());
            }
            d.add(b, rng.random::<f64>());
        }
        let subset = [0usize, 63, 64, 69, 7];
        let via_plan = d.marginal_subset(&subset);
        // Reference: per-entry Bits::extract in the same iteration order.
        let mut expect = Distribution::new(subset.len());
        for (b, p) in d.iter() {
            expect.add(b.extract(&subset), p);
        }
        assert_eq!(via_plan.support_len(), expect.support_len());
        for ((ab, ap), (eb, ep)) in via_plan.iter().zip(expect.iter()) {
            assert_eq!(ab, eb);
            assert!(ap == ep, "plan-based subset diverged at {ab}");
        }
    }
}
