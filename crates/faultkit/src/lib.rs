//! Supervision primitives for the SuperSim pipeline: cooperative
//! cancellation, deadlines, poison-recovering locks, and a deterministic
//! fault-injection harness.
//!
//! The batch scheduler (`supersim`'s pipeline) runs many independent jobs
//! on one shared worker pool. A service built on that pool must guarantee
//! that one pathological job — a panicking kernel, a job past its latency
//! budget, an operator-cancelled batch — fails *alone*, *fast*, and
//! *reportably*. This crate holds the pieces of that contract that are
//! independent of the pipeline itself:
//!
//! * [`CancelToken`] — a shareable cooperative cancellation flag;
//! * [`Supervisor`] — the per-job supervision context (cancel token +
//!   deadline + fault plan), consulted at chunk/fragment boundaries via
//!   [`Supervisor::check`];
//! * [`FaultPlan`] — a deterministic, seeded schedule of injected faults
//!   (panic / error / stall / attempt-limited transient) keyed by
//!   `(job, stage, task)`, so every recovery path — including retry —
//!   is exercised by tests rather than trusted;
//! * [`lock_or_recover`] — mutex acquisition that recovers from poisoning
//!   instead of cascading a caught panic into `PoisonError` panics.
//!
//! Everything here is dependency-free `std`. Determinism is a design
//! constraint throughout: a fault plan fires at exactly the scheduled
//! sites for every thread count, and the seeded scatter
//! ([`FaultPlan::scattered`]) derives its sites from the seed alone.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// A pipeline stage, as seen by the supervision layer. Checkpoints and
/// fault-plan sites are keyed by `(job, Stage, task)`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Fragment evaluation (task = evaluation chunk index).
    Eval,
    /// MLFT correction (task = fragment index).
    Mlft,
    /// Recombination (task = contraction chunk index).
    Recombine,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stage::Eval => write!(f, "eval"),
            Stage::Mlft => write!(f, "mlft"),
            Stage::Recombine => write!(f, "recombine"),
        }
    }
}

/// A shareable cooperative cancellation flag. Cloning shares the flag;
/// cancelling any clone cancels them all. Supervised work observes the
/// flag at its next checkpoint and stops with [`Interrupt::Cancelled`].
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Why supervised work stopped before completing.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Interrupt {
    /// The job's [`CancelToken`] was cancelled.
    Cancelled,
    /// The job ran past its deadline.
    DeadlineExceeded,
}

impl fmt::Display for Interrupt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Interrupt::Cancelled => write!(f, "cancelled"),
            Interrupt::DeadlineExceeded => write!(f, "deadline exceeded"),
        }
    }
}

impl std::error::Error for Interrupt {}

/// What a supervision checkpoint reported: either a cooperative interrupt
/// (cancellation / deadline) or an injected error from the fault plan.
/// (Injected *panics* do not return — they unwind, exactly like a real
/// defect, so the catch-unwind isolation path is what gets exercised.)
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Cancelled or past deadline.
    Interrupted(Interrupt),
    /// A scheduled [`FaultKind::Error`] fired at this site.
    Injected(String),
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::Interrupted(i) => write!(f, "{i}"),
            Fault::Injected(msg) => write!(f, "injected error: {msg}"),
        }
    }
}

impl std::error::Error for Fault {}

/// The kind of fault a [`FaultPlan`] fires at a scheduled site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic at the checkpoint (exercises `catch_unwind` isolation).
    Panic,
    /// Return an injected error from the checkpoint (exercises the typed
    /// per-job error path).
    Error,
    /// Sleep at the checkpoint, then continue (exercises deadlines and
    /// slow-job isolation).
    Stall(Duration),
    /// A *transient* fault: return an injected error while the job's
    /// [`Supervisor::attempt`] is below `n`, then pass forever after —
    /// the chaos model of a flaky worker that recovers on retry. The
    /// injected message carries the [`TRANSIENT_MARKER`] prefix so retry
    /// layers can classify it without new error variants. The firing
    /// decision is a pure function of `(site, attempt)`, so schedules
    /// are identical for every thread count.
    FailNTimes(usize),
}

/// Message prefix of errors injected by [`FaultKind::FailNTimes`]; retry
/// layers classify an injected error as transient iff its site message
/// starts with this marker.
pub const TRANSIENT_MARKER: &str = "transient";

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Panic => write!(f, "panic"),
            FaultKind::Error => write!(f, "error"),
            FaultKind::Stall(d) => write!(f, "stall {d:?}"),
            FaultKind::FailNTimes(n) => write!(f, "fail first {n} attempts"),
        }
    }
}

/// A deterministic schedule of injected faults, keyed by
/// `(job, stage, task)`. The plan is immutable once built and shared via
/// `Arc`, so every worker observes the identical schedule; a site fires
/// every time its checkpoint is reached (checkpoints run at most once per
/// task on every path, so in practice a site fires at most once per run).
///
/// Per-job deadline overrides ([`FaultPlan::with_job_deadline`]) ride
/// along for chaos testing: they let a harness give one job of a batch a
/// zero deadline — a deterministic `DeadlineExceeded` at its first
/// checkpoint — without perturbing its neighbours.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    sites: BTreeMap<(usize, Stage, usize), FaultKind>,
    job_deadlines: BTreeMap<usize, Duration>,
}

impl FaultPlan {
    /// An empty plan (no faults fire).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedules `kind` to fire when `job` reaches `task` of `stage`.
    /// Later calls override earlier ones at the same site.
    pub fn inject(mut self, job: usize, stage: Stage, task: usize, kind: FaultKind) -> Self {
        self.sites.insert((job, stage, task), kind);
        self
    }

    /// Overrides `job`'s deadline (chaos-harness knob: `Duration::ZERO`
    /// makes the job fail deterministically at its first checkpoint).
    pub fn with_job_deadline(mut self, job: usize, deadline: Duration) -> Self {
        self.job_deadlines.insert(job, deadline);
        self
    }

    /// A seeded scatter of `count` faults over `num_jobs` jobs: each
    /// chosen job gets one fault at task 0 of its evaluation stage (every
    /// job has at least one evaluation chunk, so the site always fires),
    /// with the kind cycling panic → error → stall by seed. The schedule
    /// is a pure function of `(seed, num_jobs, count)` — the CI fault
    /// matrix varies the seed to sweep different failure placements.
    pub fn scattered(seed: u64, num_jobs: usize, count: usize) -> Self {
        let mut plan = FaultPlan::new();
        let mut state = seed;
        for job in choose_jobs(&mut state, num_jobs, count) {
            let kind = match splitmix64(&mut state) % 3 {
                0 => FaultKind::Panic,
                1 => FaultKind::Error,
                _ => FaultKind::Stall(Duration::from_millis(1)),
            };
            plan = plan.inject(job, Stage::Eval, 0, kind);
        }
        plan
    }

    /// The transient counterpart of [`FaultPlan::scattered`]: each chosen
    /// job gets one [`FaultKind::FailNTimes`]`(fail_attempts)` fault at
    /// task 0 of its evaluation stage, so a retrying caller recovers
    /// every chosen job on attempt `fail_attempts` while a one-shot
    /// caller sees it fail. Job choice matches `scattered` exactly for
    /// the same `(seed, num_jobs, count)` — the CI transient axis reuses
    /// the seeds of the hard-fault axis.
    pub fn scattered_transient(
        seed: u64,
        num_jobs: usize,
        count: usize,
        fail_attempts: usize,
    ) -> Self {
        let mut plan = FaultPlan::new();
        let mut state = seed;
        for job in choose_jobs(&mut state, num_jobs, count) {
            plan = plan.inject(job, Stage::Eval, 0, FaultKind::FailNTimes(fail_attempts));
        }
        plan
    }

    /// The fault scheduled at `(job, stage, task)`, if any.
    pub fn at(&self, job: usize, stage: Stage, task: usize) -> Option<&FaultKind> {
        self.sites.get(&(job, stage, task))
    }

    /// The deadline override of `job`, if any.
    pub fn job_deadline(&self, job: usize) -> Option<Duration> {
        self.job_deadlines.get(&job).copied()
    }

    /// Every scheduled site, in `(job, stage, task)` order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Stage, usize, &FaultKind)> {
        self.sites
            .iter()
            .map(|(&(job, stage, task), kind)| (job, stage, task, kind))
    }

    /// The faults scheduled for one job, in `(stage, task)` order.
    pub fn faults_for_job(&self, job: usize) -> Vec<(Stage, usize, FaultKind)> {
        self.sites
            .range((job, Stage::Eval, 0)..=(job, Stage::Recombine, usize::MAX))
            .map(|(&(_, stage, task), kind)| (stage, task, kind.clone()))
            .collect()
    }

    /// Whether any fault or deadline override targets `job`.
    pub fn targets_job(&self, job: usize) -> bool {
        !self.faults_for_job(job).is_empty() || self.job_deadlines.contains_key(&job)
    }

    /// Whether the plan schedules nothing at all.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty() && self.job_deadlines.is_empty()
    }
}

/// The seeded distinct-job choice shared by [`FaultPlan::scattered`] and
/// [`FaultPlan::scattered_transient`]: draws until `count.min(num_jobs)`
/// distinct jobs are chosen, in draw order.
fn choose_jobs(state: &mut u64, num_jobs: usize, count: usize) -> Vec<usize> {
    let mut chosen: Vec<usize> = Vec::new();
    if num_jobs == 0 {
        return chosen;
    }
    while chosen.len() < count.min(num_jobs) {
        let job = (splitmix64(state) % num_jobs as u64) as usize;
        if !chosen.contains(&job) {
            chosen.push(job);
        }
    }
    chosen
}

/// SplitMix64 step — the dependency-free deterministic stream used by
/// [`FaultPlan::scattered`] and exported for other seeded schedules
/// (retry backoff jitter) that must stay reproducible without a shared
/// RNG crate.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The per-job supervision context: a cancel token, an absolute deadline,
/// and a shared fault plan, checked at chunk/fragment boundaries. An
/// unsupervised (default) context reduces every checkpoint to two `None`
/// tests, so supervision adds no measurable overhead to clean runs.
#[derive(Clone, Debug)]
pub struct Supervisor {
    job: usize,
    /// Zero-based execution attempt of the supervised job (0 = first
    /// try). Consulted by attempt-aware fault kinds
    /// ([`FaultKind::FailNTimes`]); retry layers bump it per re-run so
    /// transient schedules stay a pure function of `(site, attempt)`.
    attempt: usize,
    cancel: Option<CancelToken>,
    deadline: Option<Instant>,
    epoch: Instant,
    faults: Option<Arc<FaultPlan>>,
}

impl Default for Supervisor {
    fn default() -> Self {
        Supervisor {
            job: 0,
            attempt: 0,
            cancel: None,
            deadline: None,
            epoch: Instant::now(),
            faults: None,
        }
    }
}

impl Supervisor {
    /// An unsupervised context: every checkpoint passes.
    pub fn new() -> Self {
        Supervisor::default()
    }

    /// A context for fault-plan site lookup under job id `job`.
    pub fn for_job(job: usize) -> Self {
        Supervisor {
            job,
            ..Supervisor::default()
        }
    }

    /// Attaches a cancellation token.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Sets the zero-based execution attempt (0 = first try). Transient
    /// fault sites ([`FaultKind::FailNTimes`]) fire only while the
    /// attempt is below their threshold.
    pub fn with_attempt(mut self, attempt: usize) -> Self {
        self.attempt = attempt;
        self
    }

    /// Sets the absolute deadline; checkpoints after this instant fail
    /// with [`Interrupt::DeadlineExceeded`]. When a deadline is already
    /// set, the earlier one wins (job deadlines compose with batch-wide
    /// deadlines by `min`).
    pub fn with_deadline_at(mut self, deadline: Instant) -> Self {
        self.deadline = Some(match self.deadline {
            Some(d) => d.min(deadline),
            None => deadline,
        });
        self
    }

    /// Sets the deadline `timeout` from the supervisor's epoch (its
    /// creation instant), composing by `min` like
    /// [`Supervisor::with_deadline_at`].
    pub fn with_timeout(self, timeout: Duration) -> Self {
        let at = self.epoch.checked_add(timeout).unwrap_or_else(|| {
            // Unrepresentable far-future deadline: effectively unlimited;
            // keep the existing deadline (if any) by adding nothing.
            self.epoch + Duration::from_secs(u32::MAX as u64)
        });
        self.with_deadline_at(at)
    }

    /// Attaches a shared fault plan; also applies the plan's deadline
    /// override for this job, when one is scheduled.
    pub fn with_faults(mut self, faults: Arc<FaultPlan>) -> Self {
        let override_deadline = faults.job_deadline(self.job);
        self.faults = Some(faults);
        match override_deadline {
            Some(d) => self.with_timeout(d),
            None => self,
        }
    }

    /// This supervisor's job id (fault-plan key).
    pub fn job(&self) -> usize {
        self.job
    }

    /// This supervisor's zero-based execution attempt.
    pub fn attempt(&self) -> usize {
        self.attempt
    }

    /// Wall time since the supervisor was created — the partial timing
    /// statistic reported with interrupts.
    pub fn elapsed(&self) -> Duration {
        self.epoch.elapsed()
    }

    /// Whether this context can ever fail a checkpoint or fire a fault.
    pub fn is_active(&self) -> bool {
        self.cancel.is_some() || self.deadline.is_some() || self.faults.is_some()
    }

    /// The supervision checkpoint, called at chunk/fragment boundaries:
    /// observes cancellation first, then the deadline, then fires any
    /// fault scheduled at `(job, stage, task)`.
    ///
    /// # Errors
    ///
    /// [`Fault::Interrupted`] when cancelled or past deadline;
    /// [`Fault::Injected`] when a [`FaultKind::Error`] is scheduled here.
    ///
    /// # Panics
    ///
    /// Panics (deliberately) when a [`FaultKind::Panic`] is scheduled at
    /// this site — the caller's `catch_unwind` isolation is the code
    /// under test.
    pub fn check(&self, stage: Stage, task: usize) -> Result<(), Fault> {
        if let Some(cancel) = &self.cancel {
            if cancel.is_cancelled() {
                return Err(Fault::Interrupted(Interrupt::Cancelled));
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(Fault::Interrupted(Interrupt::DeadlineExceeded));
            }
        }
        if let Some(plan) = &self.faults {
            match plan.at(self.job, stage, task) {
                Some(FaultKind::Panic) => {
                    panic!("injected fault: job {} stage {stage} task {task}", self.job);
                }
                Some(FaultKind::Error) => {
                    return Err(Fault::Injected(format!(
                        "job {} stage {stage} task {task}",
                        self.job
                    )));
                }
                Some(FaultKind::Stall(d)) => std::thread::sleep(*d),
                Some(FaultKind::FailNTimes(n)) if self.attempt < *n => {
                    return Err(Fault::Injected(format!(
                        "{TRANSIENT_MARKER}: job {} stage {stage} task {task} \
                         attempt {} of {n} injured",
                        self.job,
                        self.attempt + 1,
                    )));
                }
                Some(FaultKind::FailNTimes(_)) => {}
                None => {}
            }
        }
        Ok(())
    }
}

/// Acquires a mutex, recovering from poisoning: a panic caught and
/// contained by the supervision layer must not cascade into `PoisonError`
/// panics in every sibling worker that touches the same job state. The
/// protected data's invariants are maintained by the callers (each slot
/// is written by exactly one task), so recovery is sound.
pub fn lock_or_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Consumes a mutex, recovering its contents even when poisoned — the
/// end-of-run counterpart of [`lock_or_recover`].
pub fn into_inner_or_recover<T>(mutex: Mutex<T>) -> T {
    mutex
        .into_inner()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Blocks on a condition variable, recovering from poisoning — the
/// [`Condvar::wait`] counterpart of [`lock_or_recover`], for worker pools
/// that must keep parking/waking after a sibling panicked while holding
/// the paired mutex.
pub fn wait_or_recover<'a, T>(
    condvar: &std::sync::Condvar,
    guard: MutexGuard<'a, T>,
) -> MutexGuard<'a, T> {
    condvar
        .wait(guard)
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_is_shared_between_clones() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
    }

    #[test]
    fn unsupervised_checkpoints_always_pass() {
        let s = Supervisor::new();
        assert!(!s.is_active());
        for task in 0..4 {
            assert_eq!(s.check(Stage::Eval, task), Ok(()));
            assert_eq!(s.check(Stage::Recombine, task), Ok(()));
        }
    }

    #[test]
    fn cancellation_beats_deadline_at_checkpoints() {
        let cancel = CancelToken::new();
        cancel.cancel();
        let s = Supervisor::new()
            .with_cancel(cancel)
            .with_timeout(Duration::ZERO);
        assert_eq!(
            s.check(Stage::Eval, 0),
            Err(Fault::Interrupted(Interrupt::Cancelled))
        );
    }

    #[test]
    fn zero_deadline_fails_every_checkpoint() {
        let s = Supervisor::new().with_timeout(Duration::ZERO);
        for task in 0..3 {
            assert_eq!(
                s.check(Stage::Mlft, task),
                Err(Fault::Interrupted(Interrupt::DeadlineExceeded))
            );
        }
    }

    #[test]
    fn deadlines_compose_by_min() {
        let s = Supervisor::new()
            .with_timeout(Duration::from_secs(3600))
            .with_timeout(Duration::ZERO);
        assert_eq!(
            s.check(Stage::Eval, 0),
            Err(Fault::Interrupted(Interrupt::DeadlineExceeded))
        );
        let t = Supervisor::new()
            .with_timeout(Duration::ZERO)
            .with_timeout(Duration::from_secs(3600));
        assert_eq!(
            t.check(Stage::Eval, 0),
            Err(Fault::Interrupted(Interrupt::DeadlineExceeded))
        );
    }

    #[test]
    fn fault_plan_fires_only_at_its_site() {
        let plan = Arc::new(FaultPlan::new().inject(2, Stage::Eval, 3, FaultKind::Error));
        let hit = Supervisor::for_job(2).with_faults(plan.clone());
        assert!(matches!(hit.check(Stage::Eval, 3), Err(Fault::Injected(_))));
        assert_eq!(hit.check(Stage::Eval, 2), Ok(()));
        assert_eq!(hit.check(Stage::Mlft, 3), Ok(()));
        let other_job = Supervisor::for_job(1).with_faults(plan);
        assert_eq!(other_job.check(Stage::Eval, 3), Ok(()));
    }

    #[test]
    fn injected_panic_unwinds_at_its_site() {
        let plan = Arc::new(FaultPlan::new().inject(0, Stage::Recombine, 1, FaultKind::Panic));
        let s = Supervisor::for_job(0).with_faults(plan);
        assert_eq!(s.check(Stage::Recombine, 0), Ok(()));
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = s.check(Stage::Recombine, 1);
        }));
        let payload = caught.unwrap_err();
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("injected fault"), "payload: {msg}");
    }

    #[test]
    fn job_deadline_override_applies_through_with_faults() {
        let plan = Arc::new(FaultPlan::new().with_job_deadline(4, Duration::ZERO));
        let doomed = Supervisor::for_job(4).with_faults(plan.clone());
        assert_eq!(
            doomed.check(Stage::Eval, 0),
            Err(Fault::Interrupted(Interrupt::DeadlineExceeded))
        );
        let fine = Supervisor::for_job(3).with_faults(plan);
        assert_eq!(fine.check(Stage::Eval, 0), Ok(()));
    }

    #[test]
    fn scattered_plans_are_seed_deterministic() {
        let a = FaultPlan::scattered(7, 10, 3);
        let b = FaultPlan::scattered(7, 10, 3);
        let sites_a: Vec<_> = a.iter().map(|(j, s, t, k)| (j, s, t, k.clone())).collect();
        let sites_b: Vec<_> = b.iter().map(|(j, s, t, k)| (j, s, t, k.clone())).collect();
        assert_eq!(sites_a, sites_b);
        assert_eq!(sites_a.len(), 3);
        // Every site lands on eval task 0 of a distinct in-range job.
        for (job, stage, task, _) in &sites_a {
            assert!(*job < 10);
            assert_eq!(*stage, Stage::Eval);
            assert_eq!(*task, 0);
        }
        // A different seed produces a different placement (for these
        // parameters; equality would be astronomically unlikely).
        let c = FaultPlan::scattered(8, 10, 3);
        let sites_c: Vec<_> = c.iter().map(|(j, s, t, k)| (j, s, t, k.clone())).collect();
        assert_ne!(sites_a, sites_c);
    }

    #[test]
    fn fail_n_times_injures_then_passes_by_attempt() {
        let plan = Arc::new(FaultPlan::new().inject(1, Stage::Eval, 0, FaultKind::FailNTimes(2)));
        for attempt in 0..4 {
            let s = Supervisor::for_job(1)
                .with_attempt(attempt)
                .with_faults(plan.clone());
            assert_eq!(s.attempt(), attempt);
            let outcome = s.check(Stage::Eval, 0);
            if attempt < 2 {
                match outcome {
                    Err(Fault::Injected(msg)) => {
                        assert!(msg.starts_with(TRANSIENT_MARKER), "marker missing: {msg}");
                        assert!(msg.contains(&format!("attempt {}", attempt + 1)));
                    }
                    other => panic!("attempt {attempt}: expected transient error, got {other:?}"),
                }
            } else {
                assert_eq!(outcome, Ok(()), "attempt {attempt} must pass");
            }
            // Other sites of the same job never fire.
            assert_eq!(s.check(Stage::Eval, 1), Ok(()));
            assert_eq!(s.check(Stage::Mlft, 0), Ok(()));
        }
        // Other jobs are untouched on every attempt.
        let other = Supervisor::for_job(0).with_faults(plan);
        assert_eq!(other.check(Stage::Eval, 0), Ok(()));
    }

    #[test]
    fn scattered_transient_matches_scattered_placement() {
        let hard = FaultPlan::scattered(7, 10, 3);
        let transient = FaultPlan::scattered_transient(7, 10, 3, 2);
        let hard_sites: Vec<_> = hard.iter().map(|(j, s, t, _)| (j, s, t)).collect();
        let transient_sites: Vec<_> = transient.iter().map(|(j, s, t, _)| (j, s, t)).collect();
        assert_eq!(hard_sites, transient_sites);
        for (_, _, _, kind) in transient.iter() {
            assert_eq!(*kind, FaultKind::FailNTimes(2));
        }
        // Reproducible: same parameters, same plan.
        let again = FaultPlan::scattered_transient(7, 10, 3, 2);
        let again_sites: Vec<_> = again
            .iter()
            .map(|(j, s, t, k)| (j, s, t, k.clone()))
            .collect();
        let t_sites: Vec<_> = transient
            .iter()
            .map(|(j, s, t, k)| (j, s, t, k.clone()))
            .collect();
        assert_eq!(again_sites, t_sites);
    }

    #[test]
    fn lock_or_recover_survives_poisoning() {
        let m = Mutex::new(41);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = m.lock().unwrap();
            panic!("poison it");
        }));
        assert!(m.is_poisoned());
        *lock_or_recover(&m) += 1;
        assert_eq!(*lock_or_recover(&m), 42);
        assert_eq!(into_inner_or_recover(m), 42);
    }

    #[test]
    fn wait_or_recover_wakes_through_poisoned_mutex() {
        use std::sync::{Arc, Condvar};
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        // Poison the mutex first so the waiter exercises the recovery arm.
        {
            let pair = Arc::clone(&pair);
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                let _guard = pair.0.lock().unwrap();
                panic!("poison it");
            }));
        }
        assert!(pair.0.is_poisoned());
        let signaller = {
            let pair = Arc::clone(&pair);
            std::thread::spawn(move || {
                *lock_or_recover(&pair.0) = true;
                pair.1.notify_all();
            })
        };
        let mut ready = lock_or_recover(&pair.0);
        while !*ready {
            ready = wait_or_recover(&pair.1, ready);
        }
        drop(ready);
        signaller.join().unwrap();
    }
}
