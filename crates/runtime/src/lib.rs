//! Persistent worker pool and shared parallel-execution substrate.
//!
//! Before this crate existed, parallelism was re-implemented four times
//! across the workspace — `cutkit::tensor`, `cutkit::mlft`,
//! `cutkit::recombine`, and the batch scheduler in `supersim` each owned a
//! `std::thread::scope` plus a spawn loop, and every `run_batch` /
//! `run_sweep` call paid the full thread-spawn cost again. This crate
//! replaces all of them with one **persistent, lazily-grown pool**
//! ([`Pool`]) plus the small set of primitives those sites actually
//! shared:
//!
//! - [`Pool::run`] — the `thread::scope` replacement: executes a body
//!   closure once per worker index on pooled threads and blocks until all
//!   of them finish, propagating the first panic exactly like a scoped
//!   spawn would.
//! - [`TaskQueue`] / [`Pool::run_queue`] — the injectable task-source
//!   abstraction: a pool does not know *what* it is draining, call sites
//!   plug in an atomic counter ([`CounterQueue`]), the batch scheduler's
//!   dependency-driven FIFO, or anything else that hands out tasks.
//! - [`OrderedMerger`] — streaming, strictly index-ordered reduction:
//!   workers submit per-chunk results as they finish and a single central
//!   accumulator merges them **in chunk order**, so float association is
//!   identical to a sequential run while peak retention stays bounded by
//!   the merge window instead of the whole chunk set.
//! - [`worker_count`] — the one thread-count heuristic (request → env
//!   override → hardware default → cap clamp) that was previously
//!   copy-pasted at every spawn site.
//!
//! # Ownership and lifecycle
//!
//! Workers are plain OS threads owned by the [`Pool`] that spawned them.
//! The process-wide pool ([`Pool::global`]) spawns workers on first
//! demand, grows when concurrent demand exceeds the number of idle
//! workers (nested `run` calls — e.g. a recombination running inside a
//! batch task — therefore still get real parallelism), and **never shrinks
//! or re-spawns**: consecutive `run_batch` calls reuse the same live
//! threads, which is the point. Idle workers park on a condition variable
//! and cost nothing but their stacks. Locally constructed pools
//! ([`Pool::new`], used by tests) shut their workers down on drop.
//!
//! The **caller participates**: `Pool::run(n, body)` claims worker
//! indices for its own job on the calling thread too, so a job can never
//! deadlock waiting for pool capacity — with zero idle workers the caller
//! simply runs every index itself (and `n == 1` never touches the pool at
//! all, keeping the sequential paths allocation-free). The calling thread
//! only blocks once all indices are claimed, waiting for the stragglers
//! it did not run itself.
//!
//! # Supervisor integration and panic safety
//!
//! The pool is deliberately supervision-agnostic: `faultkit::Supervisor`
//! checkpoints (cancellation, deadlines, fault injection) live inside the
//! task bodies exactly as they did under `thread::scope`, and flow through
//! unchanged. What the pool does guarantee is containment: each claimed
//! index runs under `catch_unwind`, the first panic payload is re-raised
//! on the *calling* thread once the job completes (matching scoped-spawn
//! semantics), and pool threads never die from a task panic — a panicking
//! fault-injection run leaves the pool as healthy as a clean one. Because
//! unwinding still runs drop glue with `std::thread::panicking()` true,
//! abort-on-panic guards inside task bodies (the batch scheduler's
//! poison-containment) keep working on pooled threads. All internal locks
//! use `faultkit`'s poison-recovering accessors.
//!
//! # Bit-identity
//!
//! Nothing in this crate makes scheduling observable to results: work
//! decomposition stays a pure function of the job at every call site, and
//! [`OrderedMerger`] commits merges in strict index order from a single
//! accumulator, so outputs are bit-identical for every pool size —
//! including `n = 1`, which bypasses the pool entirely.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use faultkit::{into_inner_or_recover, lock_or_recover, wait_or_recover};

// ---------------------------------------------------------------------------
// Thread-count heuristic
// ---------------------------------------------------------------------------

/// Resolves a requested thread count against the environment and a cap.
///
/// `requested > 0` is taken literally; `requested == 0` means "auto":
/// the `SUPERSIM_TEST_THREADS` environment variable when set to a positive
/// integer (so CI matrices pin the default pool width process-wide),
/// otherwise [`std::thread::available_parallelism`]. The result is clamped
/// to `[1, cap]` (a zero `cap` counts as 1) — pass the number of
/// independent work items as `cap` so a job never requests more workers
/// than it has tasks.
pub fn worker_count(requested: usize, cap: usize) -> usize {
    let n = if requested > 0 {
        requested
    } else {
        default_workers()
    };
    n.clamp(1, cap.max(1))
}

/// The "auto" worker count: `SUPERSIM_TEST_THREADS` when set, hardware
/// parallelism otherwise. Cached for the process lifetime.
pub fn default_workers() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| {
        resolve_default(
            std::env::var("SUPERSIM_TEST_THREADS").ok().as_deref(),
            || std::thread::available_parallelism().map_or(1, usize::from),
        )
    })
}

fn resolve_default(env: Option<&str>, fallback: impl FnOnce() -> usize) -> usize {
    env.and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(fallback)
}

// ---------------------------------------------------------------------------
// Task-queue abstraction
// ---------------------------------------------------------------------------

/// An injectable source of tasks for [`Pool::run_queue`]: anything that
/// can hand out "the next task, if any" to concurrent workers.
///
/// Implementations decide the scheduling policy (an atomic counter, a
/// blocking dependency-driven FIFO, work stealing…); the pool only drains.
/// `next` returning `None` tells the asking worker to stop — it is not
/// required to be permanent for *other* workers, which lets blocking
/// queues wake workers selectively.
pub trait TaskQueue: Sync {
    /// The task type handed to workers.
    type Task;
    /// Claims the next task, or `None` when this worker should exit.
    fn next(&self) -> Option<Self::Task>;
}

/// The simplest [`TaskQueue`]: hands out `0..len` exactly once, in claim
/// order. This is the classic atomic-counter claim loop shared by the
/// plan-building and fragment-correction sites.
pub struct CounterQueue {
    next: AtomicUsize,
    len: usize,
}

impl CounterQueue {
    /// A queue over the index range `0..len`.
    pub fn new(len: usize) -> CounterQueue {
        CounterQueue {
            next: AtomicUsize::new(0),
            len,
        }
    }
}

impl TaskQueue for CounterQueue {
    type Task = usize;

    fn next(&self) -> Option<usize> {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        (i < self.len).then_some(i)
    }
}

// ---------------------------------------------------------------------------
// The pool
// ---------------------------------------------------------------------------

/// A snapshot of pool health, used by reuse assertions and the benchmark
/// report.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PoolStats {
    /// Workers alive right now.
    pub live: usize,
    /// Workers ever spawned by this pool (monotone; a warm pool stops
    /// growing, which is what the persistence tests assert).
    pub spawned_total: usize,
    /// Workers currently parked waiting for work.
    pub idle: usize,
}

/// One submitted `run` call: a lifetime-erased body plus the claim/finish
/// bookkeeping. Workers claim indices (`next`) until `tickets` are
/// exhausted; the last finished index trips the latch the caller waits on.
struct Job {
    /// Erased `&dyn Fn(usize)` of the caller's body closure.
    ///
    /// SAFETY invariant: the submitting `Pool::run` frame outlives every
    /// dereference. It cannot return before `pending` reaches zero, and
    /// indices claimed after exhaustion never dereference the body.
    body: RawBody,
    tickets: usize,
    next: AtomicUsize,
    pending: AtomicUsize,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    done: Mutex<bool>,
    latch: Condvar,
}

struct RawBody(*const (dyn Fn(usize) + Sync));
// SAFETY: the pointee is `Sync` (shared calls are safe) and the `Job`
// lifetime discipline above keeps it alive for every dereference.
unsafe impl Send for RawBody {}
unsafe impl Sync for RawBody {}

impl Job {
    /// Runs the body for one claimed index under `catch_unwind`,
    /// recording the first panic.
    fn exec(&self, index: usize) {
        // SAFETY: see the invariant on `body`.
        let body = unsafe { &*self.body.0 };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| body(index))) {
            let mut slot = lock_or_recover(&self.panic);
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
    }

    /// Marks one claimed index finished, tripping the completion latch on
    /// the last one.
    fn complete_one(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            *lock_or_recover(&self.done) = true;
            self.latch.notify_all();
        }
    }

    /// [`exec`](Job::exec) + [`complete_one`](Job::complete_one) for the
    /// participating caller (workers interleave busy accounting between
    /// the two).
    fn run_ticket(&self, index: usize) {
        self.exec(index);
        self.complete_one();
    }
}

struct PoolState {
    jobs: VecDeque<Arc<Job>>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    work: Condvar,
    live: AtomicUsize,
    spawned_total: AtomicUsize,
    idle: AtomicUsize,
    /// Workers currently *executing a body* (not parked, not scanning).
    /// Decremented before a ticket's completion latch fires, so by the
    /// time a `run` call returns every helper it used reads as available
    /// again — growth decisions see the warm pool as warm, never spawning
    /// on back-to-back calls.
    busy: AtomicUsize,
}

/// A persistent, lazily-grown worker pool. See the crate docs for the
/// ownership/lifecycle story; most code should use [`Pool::global`].
pub struct Pool {
    shared: Arc<Shared>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Default for Pool {
    fn default() -> Self {
        Pool::new()
    }
}

impl Pool {
    /// A fresh pool with no workers; they spawn on demand. Intended for
    /// tests and benchmarks that need cold-start isolation — production
    /// paths share [`Pool::global`].
    pub fn new() -> Pool {
        Pool {
            shared: Arc::new(Shared {
                state: Mutex::new(PoolState {
                    jobs: VecDeque::new(),
                    shutdown: false,
                }),
                work: Condvar::new(),
                live: AtomicUsize::new(0),
                spawned_total: AtomicUsize::new(0),
                idle: AtomicUsize::new(0),
                busy: AtomicUsize::new(0),
            }),
            handles: Mutex::new(Vec::new()),
        }
    }

    /// The process-wide pool every pipeline spawn site routes through.
    /// Never shuts down; workers persist across `run_batch` calls.
    pub fn global() -> &'static Pool {
        static GLOBAL: OnceLock<Pool> = OnceLock::new();
        GLOBAL.get_or_init(Pool::new)
    }

    /// Current pool health counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            live: self.shared.live.load(Ordering::Relaxed),
            spawned_total: self.shared.spawned_total.load(Ordering::Relaxed),
            idle: self.shared.idle.load(Ordering::Relaxed),
        }
    }

    /// Executes `body(i)` once for every worker index `i in 0..workers`
    /// and returns when all of them have finished — the drop-in
    /// replacement for `thread::scope` + spawn loop.
    ///
    /// `workers <= 1` runs `body(0)` inline without touching the pool.
    /// Otherwise the calling thread participates (it claims indices too),
    /// idle pool workers help, and the pool grows by the idle deficit so
    /// nested calls retain real parallelism.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic from any `body(i)` on the calling thread
    /// after the whole job has completed, like a scoped spawn would.
    pub fn run<F>(&self, workers: usize, body: F)
    where
        F: Fn(usize) + Sync,
    {
        if workers <= 1 {
            body(0);
            return;
        }
        let wide: &(dyn Fn(usize) + Sync) = &body;
        // SAFETY: lifetime erasure only — this frame blocks until
        // `pending == 0`, after which no dereference can happen (claims
        // past `tickets` never touch the body).
        let raw = RawBody(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync + '_),
                *const (dyn Fn(usize) + Sync + 'static),
            >(wide as *const _)
        });
        let job = Arc::new(Job {
            body: raw,
            tickets: workers,
            next: AtomicUsize::new(0),
            pending: AtomicUsize::new(workers),
            panic: Mutex::new(None),
            done: Mutex::new(false),
            latch: Condvar::new(),
        });
        {
            let mut st = lock_or_recover(&self.shared.state);
            st.jobs.push_back(Arc::clone(&job));
        }
        // Grow by the availability deficit: the caller covers one index
        // itself, non-busy workers (parked or between jobs — they will
        // find the job we just pushed) cover more, and only the remainder
        // spawns. Nested `run` calls, whose ancestors hold every existing
        // worker busy, therefore still get `workers - 1` real helpers; a
        // warm pool with enough free workers spawns nothing.
        let live = self.shared.live.load(Ordering::Acquire);
        let busy = self.shared.busy.load(Ordering::Acquire);
        let deficit = (workers - 1).saturating_sub(live.saturating_sub(busy));
        for _ in 0..deficit {
            self.spawn_worker();
        }
        self.shared.work.notify_all();

        // Participate: claim and run indices on the calling thread.
        loop {
            let t = job.next.fetch_add(1, Ordering::Relaxed);
            if t >= job.tickets {
                break;
            }
            job.run_ticket(t);
        }
        // Retire the job from the queue (a helper may already have).
        {
            let mut st = lock_or_recover(&self.shared.state);
            if let Some(pos) = st.jobs.iter().position(|j| Arc::ptr_eq(j, &job)) {
                st.jobs.remove(pos);
            }
        }
        // Wait for indices claimed by helpers.
        let mut done = lock_or_recover(&job.done);
        while !*done {
            done = wait_or_recover(&job.latch, done);
        }
        drop(done);
        let payload = lock_or_recover(&job.panic).take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    /// Drains `queue` with `workers` concurrent workers, calling
    /// `handler(worker_index, task)` for every task — [`Pool::run`] with
    /// the claim loop factored behind the [`TaskQueue`] abstraction.
    pub fn run_queue<Q, F>(&self, workers: usize, queue: &Q, handler: F)
    where
        Q: TaskQueue,
        F: Fn(usize, Q::Task) + Sync,
    {
        self.run(workers, |w| {
            while let Some(task) = queue.next() {
                handler(w, task);
            }
        });
    }

    fn spawn_worker(&self) {
        let shared = Arc::clone(&self.shared);
        let id = self.shared.spawned_total.fetch_add(1, Ordering::Relaxed);
        self.shared.live.fetch_add(1, Ordering::Relaxed);
        let handle = std::thread::Builder::new()
            .name(format!("supersim-rt-{id}"))
            .spawn(move || worker_loop(shared))
            .expect("failed to spawn pool worker");
        lock_or_recover(&self.handles).push(handle);
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut st = lock_or_recover(&self.shared.state);
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in
            into_inner_or_recover(std::mem::replace(&mut self.handles, Mutex::new(Vec::new())))
        {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        // Park until there is a job (or shutdown).
        let job = {
            let mut st = lock_or_recover(&shared.state);
            loop {
                if st.shutdown {
                    shared.live.fetch_sub(1, Ordering::Relaxed);
                    return;
                }
                if let Some(job) = st.jobs.front() {
                    break Arc::clone(job);
                }
                shared.idle.fetch_add(1, Ordering::Relaxed);
                st = wait_or_recover(&shared.work, st);
                shared.idle.fetch_sub(1, Ordering::Relaxed);
            }
        };
        // Help drain it.
        loop {
            let t = job.next.fetch_add(1, Ordering::Relaxed);
            if t >= job.tickets {
                // Exhausted: retire it from the queue if still listed so
                // the next iteration sees fresh work.
                let mut st = lock_or_recover(&shared.state);
                if let Some(front) = st.jobs.front() {
                    if Arc::ptr_eq(front, &job) {
                        st.jobs.pop_front();
                    }
                }
                break;
            }
            // Busy only while executing the body, released before the
            // completion latch — see `Shared::busy`.
            shared.busy.fetch_add(1, Ordering::AcqRel);
            job.exec(t);
            shared.busy.fetch_sub(1, Ordering::AcqRel);
            job.complete_one();
        }
    }
}

// ---------------------------------------------------------------------------
// Streaming ordered merge
// ---------------------------------------------------------------------------

/// A streaming, strictly index-ordered reduction shared by concurrent
/// producers.
///
/// Workers call [`submit`](OrderedMerger::submit) with `(index, item)` as
/// chunks finish (in any order) or [`skip`](OrderedMerger::skip) for
/// indices that produced nothing (failed or fault-skipped chunks — every
/// *claimed* index must be accounted for exactly once). A single central
/// accumulator applies `merge(acc, item)` **in ascending index order**, so
/// float association is identical to a sequential loop that merged chunk
/// results one by one — that is the bit-identity guarantee.
///
/// At most `window` indices are in flight: a submit for an index at or
/// beyond `head + window` blocks until the head advances (bounded
/// retention — this is what lets the joint-reconstruction path keep its
/// dense per-chunk accumulators without a size cap). Deadlock-free as
/// long as claimed indices are each resolved by their claimant: the
/// holder of the smallest unresolved index is never blocked, and its
/// submission advances the head.
pub struct OrderedMerger<T, A, F: FnMut(&mut A, T)> {
    inner: Mutex<MergeState<T, A, F>>,
    space: Condvar,
}

struct MergeState<T, A, F> {
    head: u64,
    window: u64,
    /// Ring buffer indexed by `index % window`: `None` = unresolved,
    /// `Some(None)` = skipped, `Some(Some(t))` = pending item.
    slots: Vec<Option<Option<T>>>,
    acc: A,
    merge: F,
}

impl<T, A, F: FnMut(&mut A, T)> OrderedMerger<T, A, F> {
    /// A merger over `acc` with the given in-flight `window` (clamped to
    /// at least 1; pass the worker count — any window yields identical
    /// results, it only bounds retention).
    pub fn new(window: usize, acc: A, merge: F) -> OrderedMerger<T, A, F> {
        let window = window.max(1) as u64;
        let mut slots = Vec::with_capacity(window as usize);
        slots.resize_with(window as usize, || None);
        OrderedMerger {
            inner: Mutex::new(MergeState {
                head: 0,
                window,
                slots,
                acc,
                merge,
            }),
            space: Condvar::new(),
        }
    }

    /// Submits the item for `index`, blocking while the index is more
    /// than `window` ahead of the merge head.
    pub fn submit(&self, index: u64, item: T) {
        self.place(index, Some(item));
    }

    /// Resolves `index` with no item (failed / fault-skipped chunk).
    pub fn skip(&self, index: u64) {
        self.place(index, None);
    }

    fn place(&self, index: u64, item: Option<T>) {
        let mut st = lock_or_recover(&self.inner);
        while index >= st.head + st.window {
            st = wait_or_recover(&self.space, st);
        }
        debug_assert!(index >= st.head, "index {index} already merged");
        let pos = (index % st.window) as usize;
        debug_assert!(st.slots[pos].is_none(), "duplicate submit for {index}");
        st.slots[pos] = Some(item);
        let mut advanced = false;
        loop {
            let MergeState {
                head,
                window,
                slots,
                acc,
                merge,
            } = &mut *st;
            let pos = (*head % *window) as usize;
            match slots[pos].take() {
                Some(Some(item)) => {
                    merge(acc, item);
                    *head += 1;
                    advanced = true;
                }
                Some(None) => {
                    *head += 1;
                    advanced = true;
                }
                None => break,
            }
        }
        if advanced {
            drop(st);
            self.space.notify_all();
        }
    }

    /// Consumes the merger and returns the accumulator. Unresolved slots
    /// past the head are discarded (the error paths return before using
    /// the accumulator).
    pub fn finish(self) -> A {
        into_inner_or_recover(self.inner).acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn worker_count_resolution() {
        assert_eq!(worker_count(4, 16), 4);
        assert_eq!(worker_count(4, 2), 2);
        assert_eq!(worker_count(7, 0), 1);
        // requested == 0 resolves through the cached default; whatever it
        // is, the clamp still applies.
        assert_eq!(worker_count(0, 1), 1);
        assert!(worker_count(0, usize::MAX) >= 1);
    }

    #[test]
    fn resolve_default_prefers_valid_env() {
        assert_eq!(resolve_default(Some("3"), || 8), 3);
        assert_eq!(resolve_default(Some(" 2 "), || 8), 2);
        assert_eq!(resolve_default(Some("0"), || 8), 8);
        assert_eq!(resolve_default(Some("nope"), || 8), 8);
        assert_eq!(resolve_default(None, || 8), 8);
    }

    #[test]
    fn run_executes_every_index_once() {
        let pool = Pool::new();
        for workers in [1usize, 2, 4, 8] {
            let hits: Vec<AtomicUsize> = (0..workers).map(|_| AtomicUsize::new(0)).collect();
            pool.run(workers, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn single_worker_runs_inline_without_spawning() {
        let pool = Pool::new();
        let caller = std::thread::current().id();
        pool.run(1, |i| {
            assert_eq!(i, 0);
            assert_eq!(std::thread::current().id(), caller);
        });
        assert_eq!(pool.stats().spawned_total, 0);
    }

    #[test]
    fn pool_reuses_workers_across_runs() {
        let pool = Pool::new();
        pool.run(4, |_| {
            std::thread::sleep(std::time::Duration::from_millis(1))
        });
        let spawned_cold = pool.stats().spawned_total;
        assert_eq!(spawned_cold, 3, "caller participates: exactly n-1 spawns");
        // Back-to-back warm runs must not spawn: busy is released before
        // the completion latch, so a finished `run` always sees its
        // helpers as available again.
        for _ in 0..8 {
            pool.run(4, |_| {
                std::thread::sleep(std::time::Duration::from_millis(1))
            });
        }
        assert_eq!(pool.stats().spawned_total, spawned_cold);
        assert_eq!(pool.stats().live, spawned_cold);
    }

    #[test]
    fn panics_propagate_to_caller_and_pool_survives() {
        let pool = Pool::new();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(4, |i| {
                if i == 2 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // The pool still works after a task panic.
        let count = AtomicUsize::new(0);
        pool.run(4, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn nested_runs_complete() {
        let pool = Pool::new();
        let count = AtomicUsize::new(0);
        pool.run(2, |_| {
            pool.run(3, |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(count.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn counter_queue_hands_out_each_index_once() {
        let pool = Pool::new();
        let queue = CounterQueue::new(100);
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        pool.run_queue(4, &queue, |_w, i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert_eq!(queue.next(), None);
    }

    #[test]
    fn ordered_merger_merges_in_index_order() {
        // Submit out of order from several threads; the merge transcript
        // must still be 0, 1, 2, ... regardless of arrival order.
        let n = 64u64;
        let merger = OrderedMerger::new(4, Vec::new(), |acc: &mut Vec<u64>, x| acc.push(x));
        let next = AtomicU64::new(0);
        Pool::new().run(4, |_| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            if i % 7 == 3 {
                merger.skip(i);
            } else {
                merger.submit(i, i);
            }
        });
        let out = merger.finish();
        let expect: Vec<u64> = (0..n).filter(|i| i % 7 != 3).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn ordered_merger_window_bounds_in_flight_items() {
        // With window 1 every submit is immediately merged, so the
        // high-index submitter must block until the head catches up.
        let merger = OrderedMerger::new(1, Vec::new(), |acc: &mut Vec<u64>, x| acc.push(x));
        Pool::new().run(2, |w| {
            if w == 0 {
                std::thread::sleep(std::time::Duration::from_millis(5));
                merger.submit(0, 0);
            } else {
                merger.submit(1, 1); // blocks until index 0 merges
            }
        });
        let merged = merger.finish();
        assert_eq!(merged, vec![0, 1]);
    }
}
