//! Portable `u64×4`-block SIMD layer for the GF(2) bit-plane kernels.
//!
//! Every hot word loop in the workspace — the [`Bits`](crate::Bits)
//! row kernels, the fused Pauli phase accumulator
//! ([`pauli_mul_phase_words`](crate::pauli_mul_phase_words)), and the
//! tableau engines' bit-plane gate/measurement sweeps — processes flat
//! `u64` slices. This module gives them one explicit 4-lane block type,
//! [`W4`], plus slice kernels built on it, so the straight-line block
//! bodies vectorize to 256-bit ops wherever the target has them.
//!
//! Two backends share the `W4` API:
//!
//! * the default **portable** backend — a `[u64; 4]` wrapper whose
//!   operators are plain lane-wise word arithmetic. It builds on the
//!   stable (offline) toolchain and optimizing backends lower the
//!   4-lane bodies to vector instructions;
//! * a **nightly** backend over `core::simd::u64x4`, enabled with
//!   `RUSTFLAGS="--cfg supersim_nightly_simd"` on a nightly toolchain
//!   (the cfg is declared in the workspace `check-cfg` list). Semantics
//!   are identical; only the codegen route differs.
//!
//! The slice kernels treat length-mismatched inputs as caller bugs
//! (asserted), process the aligned 4-word blocks with `W4`, and finish
//! the `len % 4` tail with scalar words. Callers that maintain a
//! zero-padding invariant (the `Bits` contract) need no extra masking.

/// Lanes per block: the kernels consume `u64` slices in strides of 4.
pub const LANES: usize = 4;

#[cfg(not(supersim_nightly_simd))]
mod backend {
    /// A 4-lane `u64` block with lane-wise bit operators.
    ///
    /// Portable backend: a plain `[u64; 4]` with unrolled operators.
    #[derive(Copy, Clone, Debug, PartialEq, Eq)]
    #[repr(align(32))]
    pub struct W4(pub [u64; 4]);

    impl W4 {
        /// The all-zero block.
        pub const ZERO: W4 = W4([0; 4]);

        /// Broadcasts one word into every lane.
        #[inline(always)]
        pub fn splat(w: u64) -> W4 {
            W4([w; 4])
        }

        /// Loads the first 4 words of `s`.
        ///
        /// # Panics
        ///
        /// Panics if `s` holds fewer than 4 words.
        #[inline(always)]
        pub fn load(s: &[u64]) -> W4 {
            W4([s[0], s[1], s[2], s[3]])
        }

        /// Stores the block into the first 4 words of `s`.
        ///
        /// # Panics
        ///
        /// Panics if `s` holds fewer than 4 words.
        #[inline(always)]
        pub fn store(self, s: &mut [u64]) {
            s[0] = self.0[0];
            s[1] = self.0[1];
            s[2] = self.0[2];
            s[3] = self.0[3];
        }

        /// Sum of per-lane popcounts.
        #[inline(always)]
        pub fn count_ones(self) -> u32 {
            self.0[0].count_ones()
                + self.0[1].count_ones()
                + self.0[2].count_ones()
                + self.0[3].count_ones()
        }

        /// XOR-fold of the lanes into one word (parity-preserving).
        #[inline(always)]
        pub fn xor_lanes(self) -> u64 {
            self.0[0] ^ self.0[1] ^ self.0[2] ^ self.0[3]
        }

        /// OR-fold of the lanes into one word (zero test).
        #[inline(always)]
        pub fn or_lanes(self) -> u64 {
            self.0[0] | self.0[1] | self.0[2] | self.0[3]
        }
    }

    impl std::ops::BitAnd for W4 {
        type Output = W4;
        #[inline(always)]
        fn bitand(self, o: W4) -> W4 {
            W4([
                self.0[0] & o.0[0],
                self.0[1] & o.0[1],
                self.0[2] & o.0[2],
                self.0[3] & o.0[3],
            ])
        }
    }

    impl std::ops::BitOr for W4 {
        type Output = W4;
        #[inline(always)]
        fn bitor(self, o: W4) -> W4 {
            W4([
                self.0[0] | o.0[0],
                self.0[1] | o.0[1],
                self.0[2] | o.0[2],
                self.0[3] | o.0[3],
            ])
        }
    }

    impl std::ops::BitXor for W4 {
        type Output = W4;
        #[inline(always)]
        fn bitxor(self, o: W4) -> W4 {
            W4([
                self.0[0] ^ o.0[0],
                self.0[1] ^ o.0[1],
                self.0[2] ^ o.0[2],
                self.0[3] ^ o.0[3],
            ])
        }
    }

    impl std::ops::Not for W4 {
        type Output = W4;
        #[inline(always)]
        fn not(self) -> W4 {
            W4([!self.0[0], !self.0[1], !self.0[2], !self.0[3]])
        }
    }
}

#[cfg(supersim_nightly_simd)]
mod backend {
    use core::simd::u64x4;

    /// A 4-lane `u64` block with lane-wise bit operators.
    ///
    /// Nightly backend: `core::simd::u64x4` under
    /// `--cfg supersim_nightly_simd`.
    #[derive(Copy, Clone, Debug, PartialEq, Eq)]
    pub struct W4(pub u64x4);

    impl W4 {
        /// The all-zero block.
        pub const ZERO: W4 = W4(u64x4::from_array([0; 4]));

        /// Broadcasts one word into every lane.
        #[inline(always)]
        pub fn splat(w: u64) -> W4 {
            W4(u64x4::splat(w))
        }

        /// Loads the first 4 words of `s`.
        #[inline(always)]
        pub fn load(s: &[u64]) -> W4 {
            W4(u64x4::from_slice(s))
        }

        /// Stores the block into the first 4 words of `s`.
        #[inline(always)]
        pub fn store(self, s: &mut [u64]) {
            self.0.copy_to_slice(&mut s[..4]);
        }

        /// Sum of per-lane popcounts.
        #[inline(always)]
        pub fn count_ones(self) -> u32 {
            let a = self.0.to_array();
            a[0].count_ones() + a[1].count_ones() + a[2].count_ones() + a[3].count_ones()
        }

        /// XOR-fold of the lanes into one word (parity-preserving).
        #[inline(always)]
        pub fn xor_lanes(self) -> u64 {
            let a = self.0.to_array();
            a[0] ^ a[1] ^ a[2] ^ a[3]
        }

        /// OR-fold of the lanes into one word (zero test).
        #[inline(always)]
        pub fn or_lanes(self) -> u64 {
            let a = self.0.to_array();
            a[0] | a[1] | a[2] | a[3]
        }
    }

    impl std::ops::BitAnd for W4 {
        type Output = W4;
        #[inline(always)]
        fn bitand(self, o: W4) -> W4 {
            W4(self.0 & o.0)
        }
    }

    impl std::ops::BitOr for W4 {
        type Output = W4;
        #[inline(always)]
        fn bitor(self, o: W4) -> W4 {
            W4(self.0 | o.0)
        }
    }

    impl std::ops::BitXor for W4 {
        type Output = W4;
        #[inline(always)]
        fn bitxor(self, o: W4) -> W4 {
            W4(self.0 ^ o.0)
        }
    }

    impl std::ops::Not for W4 {
        type Output = W4;
        #[inline(always)]
        fn not(self) -> W4 {
            W4(!self.0)
        }
    }
}

pub use backend::W4;

/// `dst[k] ^= src[k]` for every word.
///
/// # Panics
///
/// Panics on length mismatch.
#[inline]
pub fn xor_into(dst: &mut [u64], src: &[u64]) {
    assert_eq!(dst.len(), src.len(), "length mismatch");
    let mut d = dst.chunks_exact_mut(LANES);
    let mut s = src.chunks_exact(LANES);
    for (dw, sw) in d.by_ref().zip(s.by_ref()) {
        (W4::load(dw) ^ W4::load(sw)).store(dw);
    }
    for (dw, sw) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *dw ^= sw;
    }
}

/// `dst[k] ^= a[k] & b[k]` for every word.
///
/// # Panics
///
/// Panics on length mismatch.
#[inline]
pub fn and_xor_into(dst: &mut [u64], a: &[u64], b: &[u64]) {
    assert!(
        dst.len() == a.len() && dst.len() == b.len(),
        "length mismatch"
    );
    let mut d = dst.chunks_exact_mut(LANES);
    let mut ab = a.chunks_exact(LANES);
    let mut bb = b.chunks_exact(LANES);
    for ((dw, aw), bw) in d.by_ref().zip(ab.by_ref()).zip(bb.by_ref()) {
        (W4::load(dw) ^ (W4::load(aw) & W4::load(bw))).store(dw);
    }
    for ((dw, aw), bw) in d
        .into_remainder()
        .iter_mut()
        .zip(ab.remainder())
        .zip(bb.remainder())
    {
        *dw ^= aw & bw;
    }
}

/// `dst[k] ^= a[k] & !b[k]` for every word.
///
/// # Panics
///
/// Panics on length mismatch.
#[inline]
pub fn andnot_xor_into(dst: &mut [u64], a: &[u64], b: &[u64]) {
    assert!(
        dst.len() == a.len() && dst.len() == b.len(),
        "length mismatch"
    );
    let mut d = dst.chunks_exact_mut(LANES);
    let mut ab = a.chunks_exact(LANES);
    let mut bb = b.chunks_exact(LANES);
    for ((dw, aw), bw) in d.by_ref().zip(ab.by_ref()).zip(bb.by_ref()) {
        (W4::load(dw) ^ (W4::load(aw) & !W4::load(bw))).store(dw);
    }
    for ((dw, aw), bw) in d
        .into_remainder()
        .iter_mut()
        .zip(ab.remainder())
        .zip(bb.remainder())
    {
        *dw ^= aw & !bw;
    }
}

/// Sum of per-word popcounts.
#[inline]
pub fn popcount(a: &[u64]) -> u32 {
    let mut blocks = a.chunks_exact(LANES);
    let mut total = 0u32;
    for c in blocks.by_ref() {
        total += W4::load(c).count_ones();
    }
    total
        + blocks
            .remainder()
            .iter()
            .map(|w| w.count_ones())
            .sum::<u32>()
}

/// `popcount(a & b)` without materializing the AND.
///
/// # Panics
///
/// Panics on length mismatch.
#[inline]
pub fn and_popcount(a: &[u64], b: &[u64]) -> u32 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let mut ab = a.chunks_exact(LANES);
    let mut bb = b.chunks_exact(LANES);
    let mut total = 0u32;
    for (aw, bw) in ab.by_ref().zip(bb.by_ref()) {
        total += (W4::load(aw) & W4::load(bw)).count_ones();
    }
    for (aw, bw) in ab.remainder().iter().zip(bb.remainder()) {
        total += (aw & bw).count_ones();
    }
    total
}

/// XOR-fold of all words into one (preserves total popcount parity).
#[inline]
pub fn xor_fold(a: &[u64]) -> u64 {
    let mut blocks = a.chunks_exact(LANES);
    let mut acc = W4::ZERO;
    for c in blocks.by_ref() {
        acc = acc ^ W4::load(c);
    }
    let mut fold = acc.xor_lanes();
    for &w in blocks.remainder() {
        fold ^= w;
    }
    fold
}

/// XOR-fold of `a & b` into one word (the GF(2) dot product folds this
/// once more with a popcount-parity).
///
/// # Panics
///
/// Panics on length mismatch.
#[inline]
pub fn and_xor_fold(a: &[u64], b: &[u64]) -> u64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let mut ab = a.chunks_exact(LANES);
    let mut bb = b.chunks_exact(LANES);
    let mut acc = W4::ZERO;
    for (aw, bw) in ab.by_ref().zip(bb.by_ref()) {
        acc = acc ^ (W4::load(aw) & W4::load(bw));
    }
    let mut fold = acc.xor_lanes();
    for (aw, bw) in ab.remainder().iter().zip(bb.remainder()) {
        fold ^= aw & bw;
    }
    fold
}

/// Returns `true` when any word is nonzero (short-circuits per block).
#[inline]
pub fn any_nonzero(a: &[u64]) -> bool {
    let mut blocks = a.chunks_exact(LANES);
    for c in blocks.by_ref() {
        if W4::load(c).or_lanes() != 0 {
            return true;
        }
    }
    blocks.remainder().iter().any(|&w| w != 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn patterned(len: usize, seed: u64) -> Vec<u64> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                x
            })
            .collect()
    }

    #[test]
    fn w4_ops_are_lane_wise() {
        let a = W4::load(&[1, 2, 4, 8]);
        let b = W4::splat(0b1010);
        assert_eq!(
            (a ^ b).xor_lanes(),
            (1 ^ 10) ^ (2 ^ 10) ^ (4 ^ 10) ^ (8 ^ 10)
        );
        assert_eq!((a & b).count_ones(), 2); // lanes: 1&10=0, 2&10=2, 4&10=0, 8&10=8
        assert_eq!((a | b).or_lanes(), 1 | 2 | 4 | 8 | 10);
        assert_eq!((!W4::ZERO).count_ones(), 256);
        let mut out = [0u64; 4];
        a.store(&mut out);
        assert_eq!(out, [1, 2, 4, 8]);
    }

    #[test]
    fn slice_kernels_match_scalar_reference_across_tails() {
        for len in [0usize, 1, 3, 4, 5, 7, 8, 11, 16, 33] {
            let a = patterned(len, 2 * len as u64 + 1);
            let b = patterned(len, 2 * len as u64 + 9);
            let mut d = a.clone();
            xor_into(&mut d, &b);
            for k in 0..len {
                assert_eq!(d[k], a[k] ^ b[k], "xor_into len {len} word {k}");
            }
            let mut d = a.clone();
            and_xor_into(&mut d, &b, &a);
            for k in 0..len {
                assert_eq!(
                    d[k],
                    a[k] ^ (b[k] & a[k]),
                    "and_xor_into len {len} word {k}"
                );
            }
            let mut d = a.clone();
            andnot_xor_into(&mut d, &b, &a);
            for k in 0..len {
                assert_eq!(
                    d[k],
                    a[k] ^ (b[k] & !a[k]),
                    "andnot_xor_into len {len} word {k}"
                );
            }
            assert_eq!(
                popcount(&a),
                a.iter().map(|w| w.count_ones()).sum::<u32>(),
                "popcount len {len}"
            );
            assert_eq!(
                and_popcount(&a, &b),
                a.iter()
                    .zip(&b)
                    .map(|(x, y)| (x & y).count_ones())
                    .sum::<u32>(),
                "and_popcount len {len}"
            );
            assert_eq!(
                xor_fold(&a),
                a.iter().fold(0, |acc, w| acc ^ w),
                "xor_fold len {len}"
            );
            assert_eq!(
                and_xor_fold(&a, &b),
                a.iter().zip(&b).fold(0, |acc, (x, y)| acc ^ (x & y)),
                "and_xor_fold len {len}"
            );
            assert_eq!(any_nonzero(&a), a.iter().any(|&w| w != 0));
            assert!(!any_nonzero(&vec![0u64; len]));
        }
    }
}
