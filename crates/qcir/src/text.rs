//! A plain-text circuit format for dumping and loading benchmarks.
//!
//! One operation per line, lowercase gate name followed by qubit indices;
//! parameterized gates carry their parameter in parentheses; noise
//! channels are prefixed with `!`. Comments start with `#`.
//!
//! ```text
//! qubits 3
//! h 0
//! cx 0 1
//! rz(1.5707963) 1
//! t 2
//! !depolarize1(0.01) 0
//! ```

use crate::{Circuit, Gate, NoiseChannel, OpKind, Operation, Qubit};
use std::fmt::Write as _;

/// Error from parsing the text circuit format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCircuitError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseCircuitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseCircuitError {}

/// Serializes a circuit to the text format.
pub fn to_text(circuit: &Circuit) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "qubits {}", circuit.num_qubits());
    for op in circuit.ops() {
        let name = match &op.kind {
            OpKind::Gate(g) => gate_token(*g),
            OpKind::Noise(c) => noise_token(*c),
        };
        let qs: Vec<String> = op.qubits.iter().map(|q| q.index().to_string()).collect();
        let _ = writeln!(out, "{name} {}", qs.join(" "));
    }
    out
}

fn gate_token(g: Gate) -> String {
    match g {
        Gate::I => "i".into(),
        Gate::X => "x".into(),
        Gate::Y => "y".into(),
        Gate::Z => "z".into(),
        Gate::H => "h".into(),
        Gate::S => "s".into(),
        Gate::Sdg => "sdg".into(),
        Gate::SqrtX => "sx".into(),
        Gate::SqrtXdg => "sxdg".into(),
        Gate::SqrtY => "sy".into(),
        Gate::SqrtYdg => "sydg".into(),
        Gate::T => "t".into(),
        Gate::Tdg => "tdg".into(),
        Gate::Rz(a) => format!("rz({a:.17})"),
        Gate::Rx(a) => format!("rx({a:.17})"),
        Gate::Ry(a) => format!("ry({a:.17})"),
        Gate::ZPow(a) => format!("zpow({a:.17})"),
        Gate::Cx => "cx".into(),
        Gate::Cy => "cy".into(),
        Gate::Cz => "cz".into(),
        Gate::Swap => "swap".into(),
    }
}

fn noise_token(c: NoiseChannel) -> String {
    match c {
        NoiseChannel::BitFlip(p) => format!("!bitflip({p:.17})"),
        NoiseChannel::PhaseFlip(p) => format!("!phaseflip({p:.17})"),
        NoiseChannel::YFlip(p) => format!("!yflip({p:.17})"),
        NoiseChannel::Depolarize1(p) => format!("!depolarize1({p:.17})"),
        NoiseChannel::Depolarize2(p) => format!("!depolarize2({p:.17})"),
    }
}

/// Parses a circuit from the text format.
///
/// # Errors
///
/// Returns [`ParseCircuitError`] on malformed input (unknown gate, bad
/// parameter, missing or out-of-range qubits, missing header).
pub fn from_text(src: &str) -> Result<Circuit, ParseCircuitError> {
    let err = |line: usize, message: &str| ParseCircuitError {
        line,
        message: message.to_string(),
    };
    let mut circuit: Option<Circuit> = None;
    for (i, raw) in src.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let head = parts.next().expect("non-empty line");
        if head == "qubits" {
            let n: usize = parts
                .next()
                .ok_or_else(|| err(line_no, "missing qubit count"))?
                .parse()
                .map_err(|_| err(line_no, "invalid qubit count"))?;
            circuit = Some(Circuit::new(n));
            continue;
        }
        let c = circuit
            .as_mut()
            .ok_or_else(|| err(line_no, "missing 'qubits N' header"))?;
        let qubits: Vec<usize> = parts
            .map(str::parse)
            .collect::<Result<_, _>>()
            .map_err(|_| err(line_no, "invalid qubit index"))?;
        for &q in &qubits {
            if q >= c.num_qubits() {
                return Err(err(line_no, &format!("qubit {q} out of range")));
            }
        }
        let (name, param) = split_param(head, line_no)?;
        let op = build_op(name, param, &qubits, line_no)?;
        if op.qubits.len() != qubits.len() {
            return Err(err(line_no, "wrong number of qubits"));
        }
        c.push(op);
    }
    circuit.ok_or_else(|| err(1, "missing 'qubits N' header"))
}

/// Splits `name(1.23)` into `("name", Some(1.23))`.
fn split_param(token: &str, line: usize) -> Result<(&str, Option<f64>), ParseCircuitError> {
    match token.find('(') {
        None => Ok((token, None)),
        Some(open) => {
            let close = token.rfind(')').ok_or_else(|| ParseCircuitError {
                line,
                message: "unclosed parameter".into(),
            })?;
            let value: f64 = token[open + 1..close]
                .parse()
                .map_err(|_| ParseCircuitError {
                    line,
                    message: "invalid parameter".into(),
                })?;
            Ok((&token[..open], Some(value)))
        }
    }
}

fn build_op(
    name: &str,
    param: Option<f64>,
    qubits: &[usize],
    line: usize,
) -> Result<Operation, ParseCircuitError> {
    let qs: Vec<Qubit> = qubits.iter().map(|&q| Qubit(q)).collect();
    let fail = |message: &str| ParseCircuitError {
        line,
        message: message.to_string(),
    };
    let need_param = || param.ok_or_else(|| fail("missing parameter"));
    let no_param = |g: Gate| {
        if param.is_some() {
            Err(fail("unexpected parameter"))
        } else {
            Ok(g)
        }
    };
    if let Some(noise_name) = name.strip_prefix('!') {
        let p = need_param()?;
        let channel = match noise_name {
            "bitflip" => NoiseChannel::BitFlip(p),
            "phaseflip" => NoiseChannel::PhaseFlip(p),
            "yflip" => NoiseChannel::YFlip(p),
            "depolarize1" => NoiseChannel::Depolarize1(p),
            "depolarize2" => NoiseChannel::Depolarize2(p),
            other => return Err(fail(&format!("unknown noise channel '{other}'"))),
        };
        if qs.len() != channel.arity() {
            return Err(fail("wrong number of qubits for channel"));
        }
        return Ok(Operation::noise(channel, qs));
    }
    let gate = match name {
        "i" => no_param(Gate::I)?,
        "x" => no_param(Gate::X)?,
        "y" => no_param(Gate::Y)?,
        "z" => no_param(Gate::Z)?,
        "h" => no_param(Gate::H)?,
        "s" => no_param(Gate::S)?,
        "sdg" => no_param(Gate::Sdg)?,
        "sx" => no_param(Gate::SqrtX)?,
        "sxdg" => no_param(Gate::SqrtXdg)?,
        "sy" => no_param(Gate::SqrtY)?,
        "sydg" => no_param(Gate::SqrtYdg)?,
        "t" => no_param(Gate::T)?,
        "tdg" => no_param(Gate::Tdg)?,
        "rz" => Gate::Rz(need_param()?),
        "rx" => Gate::Rx(need_param()?),
        "ry" => Gate::Ry(need_param()?),
        "zpow" => Gate::ZPow(need_param()?),
        "cx" => no_param(Gate::Cx)?,
        "cy" => no_param(Gate::Cy)?,
        "cz" => no_param(Gate::Cz)?,
        "swap" => no_param(Gate::Swap)?,
        other => return Err(fail(&format!("unknown gate '{other}'"))),
    };
    if qs.len() != gate.arity() {
        return Err(fail("wrong number of qubits for gate"));
    }
    Ok(Operation::gate(gate, qs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_gates() {
        let mut c = Circuit::new(3);
        c.h(0)
            .x(1)
            .y(2)
            .z(0)
            .s(1)
            .sdg(2)
            .t(0)
            .tdg(1)
            .rz(2, 0.7)
            .rx(0, -1.2)
            .ry(1, 2.5)
            .zpow(2, 0.31)
            .cx(0, 1)
            .cy(1, 2)
            .cz(2, 0)
            .swap(0, 2);
        c.add_gate(Gate::SqrtX, &[0]);
        c.add_gate(Gate::SqrtXdg, &[1]);
        c.add_gate(Gate::SqrtY, &[2]);
        c.add_gate(Gate::SqrtYdg, &[0]);
        c.add_gate(Gate::I, &[1]);
        c.add_noise(NoiseChannel::BitFlip(0.125), &[0]);
        c.add_noise(NoiseChannel::Depolarize2(0.0625), &[1, 2]);
        let text = to_text(&c);
        let back = from_text(&text).unwrap();
        assert_eq!(back, c, "text roundtrip changed the circuit:\n{text}");
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let src = "# a bell pair\nqubits 2\n\nh 0  # hadamard\ncx 0 1\n";
        let c = from_text(src).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.num_qubits(), 2);
        assert!(c.is_clifford());
    }

    #[test]
    fn parameter_precision_survives() {
        let mut c = Circuit::new(1);
        c.rz(0, std::f64::consts::PI / 7.0);
        let back = from_text(&to_text(&c)).unwrap();
        match back.ops()[0].as_gate().unwrap() {
            Gate::Rz(a) => assert_eq!(a, std::f64::consts::PI / 7.0, "bit-exact roundtrip"),
            g => panic!("wrong gate {g:?}"),
        }
    }

    #[test]
    fn errors_are_located() {
        assert_eq!(from_text("h 0").unwrap_err().line, 1);
        let e = from_text("qubits 2\nfrobnicate 0").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("frobnicate"));
        let e = from_text("qubits 2\nh 5").unwrap_err();
        assert!(e.message.contains("out of range"));
        let e = from_text("qubits 2\nrz 0").unwrap_err();
        assert!(e.message.contains("missing parameter"));
        let e = from_text("qubits 2\ncx 0").unwrap_err();
        assert!(e.message.contains("wrong number"));
        let e = from_text("qubits 2\n!bitflip(2) 0 1").unwrap_err();
        assert!(e.message.contains("wrong number"));
    }

    #[test]
    fn rejects_unclosed_or_bad_params() {
        assert!(from_text("qubits 1\nrz(1.0 0").is_err());
        assert!(from_text("qubits 1\nrz(abc) 0").is_err());
        assert!(from_text("qubits 1\nh(0.5) 0").is_err());
    }
}
