//! Quantum circuit intermediate representation for SuperSim-RS.
//!
//! This crate plays the role Cirq plays for the original (Python) SuperSim:
//! it defines the gate set, the circuit container, and the supporting
//! Pauli/bitstring algebra that every simulator backend and the circuit
//! cutter build on.
//!
//! * [`Gate`] — the unitary gate set (Clifford group generators, their
//!   parameterized generalizations, and non-Clifford rotations such as `T`),
//!   with exact Clifford classification;
//! * [`NoiseChannel`] — Pauli noise channels for stabilizer/frame simulation;
//! * [`Circuit`] — an ordered list of operations over `n` qubit wires with a
//!   non-consuming builder API;
//! * [`Pauli`] / [`PauliString`] — phase-tracked Pauli algebra;
//! * [`Bits`] — compact bitstrings used for measurement outcomes.
//!
//! # Example
//!
//! ```
//! use qcir::Circuit;
//!
//! let mut c = Circuit::new(3);
//! c.h(0).cx(0, 1).cx(1, 2).t(2);
//! assert_eq!(c.num_qubits(), 3);
//! assert_eq!(c.t_count(), 1);
//! assert!(!c.is_clifford());
//! ```
#![cfg_attr(supersim_nightly_simd, feature(portable_simd))]

mod bits;
mod circuit;
mod gate;
mod pauli;
pub mod simd;
pub mod text;

pub use bits::{pauli_mul_phase, pauli_mul_phase_words, Bits, IndexPlan};
pub use circuit::{Circuit, OpKind, Operation};
pub use gate::{CliffordGate, Gate, NoiseChannel};
pub use pauli::{Pauli, PauliString};

/// A qubit wire index in a circuit.
///
/// Plain `usize` newtype; qubit `k` is the `k`-th wire of a [`Circuit`].
#[derive(
    Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct Qubit(pub usize);

impl Qubit {
    /// The wire index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for Qubit {
    fn from(i: usize) -> Self {
        Qubit(i)
    }
}

impl std::fmt::Display for Qubit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.0)
    }
}
