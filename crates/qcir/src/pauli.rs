//! Phase-tracked Pauli algebra.

use crate::{CliffordGate, Qubit};
use std::fmt;

/// A single-qubit Pauli operator.
///
/// The index order `I, X, Y, Z` (0..4) is the convention used for the
/// 4-valued cut indices in the circuit-cutting tensors.
#[derive(
    Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum Pauli {
    /// Identity.
    I,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
}

impl Pauli {
    /// All Paulis in index order.
    pub const ALL: [Pauli; 4] = [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z];

    /// The cut-tensor index of this Pauli (`I=0, X=1, Y=2, Z=3`).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Pauli::I => 0,
            Pauli::X => 1,
            Pauli::Y => 2,
            Pauli::Z => 3,
        }
    }

    /// Inverse of [`Pauli::index`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= 4`.
    #[inline]
    pub fn from_index(i: usize) -> Pauli {
        Pauli::ALL[i]
    }

    /// The `(x, z)` symplectic components, with `Y = iXZ ↦ (1, 1)`.
    #[inline]
    pub fn xz(self) -> (bool, bool) {
        match self {
            Pauli::I => (false, false),
            Pauli::X => (true, false),
            Pauli::Y => (true, true),
            Pauli::Z => (false, true),
        }
    }

    /// Builds a Pauli from symplectic components (`Y = (1, 1)`).
    #[inline]
    pub fn from_xz(x: bool, z: bool) -> Pauli {
        match (x, z) {
            (false, false) => Pauli::I,
            (true, false) => Pauli::X,
            (true, true) => Pauli::Y,
            (false, true) => Pauli::Z,
        }
    }

    /// Returns `true` when the two Paulis commute.
    #[inline]
    pub fn commutes(self, other: Pauli) -> bool {
        let (x1, z1) = self.xz();
        let (x2, z2) = other.xz();
        // Symplectic form: they anticommute iff x1·z2 + z1·x2 = 1 (mod 2).
        !((x1 & z2) ^ (z1 & x2))
    }

    /// Product `self · other = i^k · result`; returns `(k mod 4, result)`.
    pub fn mul(self, other: Pauli) -> (u8, Pauli) {
        let (x1, z1) = self.xz();
        let (x2, z2) = other.xz();
        let x = x1 ^ x2;
        let z = z1 ^ z2;
        let result = Pauli::from_xz(x, z);
        // Using P = i^{x z} X^x Z^z:
        //   P1·P2 = i^{x1 z1 + x2 z2 + 2 z1 x2 - x z} · (canonical result rep)
        let k = (x1 as i8 & z1 as i8) + (x2 as i8 & z2 as i8) + 2 * (z1 as i8 & x2 as i8)
            - (x as i8 & z as i8);
        (k.rem_euclid(4) as u8, result)
    }
}

impl fmt::Display for Pauli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Pauli::I => 'I',
            Pauli::X => 'X',
            Pauli::Y => 'Y',
            Pauli::Z => 'Z',
        };
        write!(f, "{c}")
    }
}

/// A phase-tracked tensor product of single-qubit Paulis.
///
/// Represents `i^phase · P₀ ⊗ P₁ ⊗ … ⊗ Pₙ₋₁`. Supports multiplication and
/// exact conjugation by Clifford gates, which is the algebra underlying
/// both the Pauli-frame simulator and the Clifford-specific cutting
/// optimizations.
///
/// ```
/// use qcir::{Pauli, PauliString, CliffordGate, Qubit};
/// let mut p = PauliString::single(3, 0, Pauli::X);
/// p.conjugate_by(CliffordGate::H, &[Qubit(0)]);
/// assert_eq!(p.pauli(0), Pauli::Z);
/// assert_eq!(p.phase(), 0);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct PauliString {
    phase: u8, // exponent of i, mod 4
    paulis: Vec<Pauli>,
}

impl PauliString {
    /// The identity string on `n` qubits.
    pub fn identity(n: usize) -> Self {
        PauliString {
            phase: 0,
            paulis: vec![Pauli::I; n],
        }
    }

    /// A single-qubit Pauli embedded in an `n`-qubit string.
    ///
    /// # Panics
    ///
    /// Panics if `qubit >= n`.
    pub fn single(n: usize, qubit: usize, p: Pauli) -> Self {
        let mut s = PauliString::identity(n);
        s.paulis[qubit] = p;
        s
    }

    /// Builds a string from per-qubit Paulis with zero phase.
    pub fn from_paulis(paulis: Vec<Pauli>) -> Self {
        PauliString { phase: 0, paulis }
    }

    /// Parses a string such as `"XIZY"`; returns `None` on invalid input.
    pub fn parse(s: &str) -> Option<Self> {
        let paulis = s
            .chars()
            .map(|c| match c {
                'I' => Some(Pauli::I),
                'X' => Some(Pauli::X),
                'Y' => Some(Pauli::Y),
                'Z' => Some(Pauli::Z),
                _ => None,
            })
            .collect::<Option<Vec<_>>>()?;
        Some(PauliString { phase: 0, paulis })
    }

    /// Number of qubits.
    #[inline]
    pub fn len(&self) -> usize {
        self.paulis.len()
    }

    /// Returns `true` for the zero-qubit string.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.paulis.is_empty()
    }

    /// The global phase exponent `k` in `i^k` (mod 4).
    #[inline]
    pub fn phase(&self) -> u8 {
        self.phase
    }

    /// Sets the global phase exponent (mod 4).
    pub fn set_phase(&mut self, k: u8) {
        self.phase = k % 4;
    }

    /// The Pauli on qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    #[inline]
    pub fn pauli(&self, q: usize) -> Pauli {
        self.paulis[q]
    }

    /// Sets the Pauli on qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn set_pauli(&mut self, q: usize, p: Pauli) {
        self.paulis[q] = p;
    }

    /// Number of non-identity positions.
    pub fn weight(&self) -> usize {
        self.paulis.iter().filter(|&&p| p != Pauli::I).count()
    }

    /// Indices of non-identity positions.
    pub fn support(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&q| self.paulis[q] != Pauli::I)
            .collect()
    }

    /// Returns `true` when the string is `±i^k · I⊗…⊗I`.
    pub fn is_identity(&self) -> bool {
        self.weight() == 0
    }

    /// Multiplies by another string in place: `self := self · other`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn mul_assign(&mut self, other: &PauliString) {
        assert_eq!(self.len(), other.len(), "length mismatch");
        let mut phase = self.phase + other.phase;
        for q in 0..self.len() {
            let (k, r) = self.paulis[q].mul(other.paulis[q]);
            phase += k;
            self.paulis[q] = r;
        }
        self.phase = phase % 4;
    }

    /// Returns `self · other`.
    pub fn mul(&self, other: &PauliString) -> PauliString {
        let mut out = self.clone();
        out.mul_assign(other);
        out
    }

    /// Returns `true` when the two strings commute.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn commutes_with(&self, other: &PauliString) -> bool {
        assert_eq!(self.len(), other.len(), "length mismatch");
        let anti = (0..self.len())
            .filter(|&q| !self.paulis[q].commutes(other.paulis[q]))
            .count();
        anti % 2 == 0
    }

    /// Conjugates in place by a Clifford gate: `self := G · self · G†`.
    ///
    /// # Panics
    ///
    /// Panics if the number of qubit arguments does not match the gate
    /// arity, or a qubit is out of range.
    pub fn conjugate_by(&mut self, gate: CliffordGate, qubits: &[Qubit]) {
        assert_eq!(qubits.len(), gate.arity(), "arity mismatch");
        use CliffordGate as G;
        match gate {
            G::I => {}
            G::X
            | G::Y
            | G::Z
            | G::H
            | G::S
            | G::Sdg
            | G::SqrtX
            | G::SqrtXdg
            | G::SqrtY
            | G::SqrtYdg => {
                let q = qubits[0].index();
                let (x, z) = self.paulis[q].xz();
                let (x, z, extra) = match gate {
                    G::X => (x, z, 2 * (z as u8)),
                    G::Y => (x, z, 2 * ((x ^ z) as u8)),
                    G::Z => (x, z, 2 * (x as u8)),
                    G::H => (z, x, 2 * ((x & z) as u8)),
                    G::S => (x, z ^ x, 2 * ((x & z) as u8)),
                    G::Sdg => (x, z ^ x, 2 * ((x & !z) as u8)),
                    G::SqrtX => (x ^ z, z, 2 * ((z & !x) as u8)),
                    G::SqrtXdg => (x ^ z, z, 2 * ((z & x) as u8)),
                    G::SqrtY => (z, x, 2 * ((x & !z) as u8)),
                    G::SqrtYdg => (z, x, 2 * ((z & !x) as u8)),
                    _ => unreachable!(),
                };
                self.paulis[q] = Pauli::from_xz(x, z);
                self.phase = (self.phase + extra) % 4;
            }
            G::Cx => {
                let (c, t) = (qubits[0].index(), qubits[1].index());
                assert_ne!(c, t, "control equals target");
                let (xc, zc) = self.paulis[c].xz();
                let (xt, zt) = self.paulis[t].xz();
                // Aaronson–Gottesman sign rule.
                let extra = 2 * ((xc & zt & !(xt ^ zc)) as u8);
                self.paulis[c] = Pauli::from_xz(xc, zc ^ zt);
                self.paulis[t] = Pauli::from_xz(xt ^ xc, zt);
                self.phase = (self.phase + extra) % 4;
            }
            G::Cz => {
                let (a, b) = (qubits[0].index(), qubits[1].index());
                assert_ne!(a, b, "control equals target");
                let (xa, za) = self.paulis[a].xz();
                let (xb, zb) = self.paulis[b].xz();
                let extra = 2 * ((xa & xb & (za ^ zb)) as u8);
                self.paulis[a] = Pauli::from_xz(xa, za ^ xb);
                self.paulis[b] = Pauli::from_xz(xb, zb ^ xa);
                self.phase = (self.phase + extra) % 4;
            }
            G::Cy => {
                // CY = S_t · CX · S†_t  ⇒ conjugation composes accordingly.
                let (c, t) = (qubits[0], qubits[1]);
                self.conjugate_by(G::Sdg, &[t]);
                self.conjugate_by(G::Cx, &[c, t]);
                self.conjugate_by(G::S, &[t]);
            }
            G::Swap => {
                let (a, b) = (qubits[0].index(), qubits[1].index());
                self.paulis.swap(a, b);
            }
        }
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.phase {
            0 => write!(f, "+")?,
            1 => write!(f, "+i")?,
            2 => write!(f, "-")?,
            _ => write!(f, "-i")?,
        }
        for p in &self.paulis {
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_pauli_products() {
        // XY = iZ
        assert_eq!(Pauli::X.mul(Pauli::Y), (1, Pauli::Z));
        // YX = -iZ
        assert_eq!(Pauli::Y.mul(Pauli::X), (3, Pauli::Z));
        // ZX = iY
        assert_eq!(Pauli::Z.mul(Pauli::X), (1, Pauli::Y));
        // XZ = -iY
        assert_eq!(Pauli::X.mul(Pauli::Z), (3, Pauli::Y));
        // YZ = iX
        assert_eq!(Pauli::Y.mul(Pauli::Z), (1, Pauli::X));
        // X·X = I
        assert_eq!(Pauli::X.mul(Pauli::X), (0, Pauli::I));
        // I·P = P
        for p in Pauli::ALL {
            assert_eq!(Pauli::I.mul(p), (0, p));
            assert_eq!(p.mul(Pauli::I), (0, p));
        }
    }

    #[test]
    fn commutation_relations() {
        assert!(Pauli::X.commutes(Pauli::X));
        assert!(Pauli::X.commutes(Pauli::I));
        assert!(!Pauli::X.commutes(Pauli::Y));
        assert!(!Pauli::X.commutes(Pauli::Z));
        assert!(!Pauli::Y.commutes(Pauli::Z));
    }

    #[test]
    fn string_multiplication_phases() {
        let x = PauliString::parse("X").unwrap();
        let y = PauliString::parse("Y").unwrap();
        let xy = x.mul(&y);
        assert_eq!(xy.pauli(0), Pauli::Z);
        assert_eq!(xy.phase(), 1); // i·Z
        let yx = y.mul(&x);
        assert_eq!(yx.phase(), 3); // -i·Z

        // (X⊗Z)(Z⊗X) = (XZ)⊗(ZX) = (-iY)(iY) = Y⊗Y with phase 0
        let a = PauliString::parse("XZ").unwrap();
        let b = PauliString::parse("ZX").unwrap();
        let ab = a.mul(&b);
        assert_eq!(ab.pauli(0), Pauli::Y);
        assert_eq!(ab.pauli(1), Pauli::Y);
        assert_eq!(ab.phase(), 0);
    }

    #[test]
    fn string_commutation() {
        let xx = PauliString::parse("XX").unwrap();
        let zz = PauliString::parse("ZZ").unwrap();
        let zi = PauliString::parse("ZI").unwrap();
        assert!(xx.commutes_with(&zz)); // two anticommuting sites
        assert!(!xx.commutes_with(&zi)); // one anticommuting site
    }

    #[test]
    fn hadamard_conjugation() {
        let q = [Qubit(0)];
        for (from, to, ph) in [
            (Pauli::X, Pauli::Z, 0u8),
            (Pauli::Z, Pauli::X, 0),
            (Pauli::Y, Pauli::Y, 2), // H Y H = -Y
        ] {
            let mut p = PauliString::single(1, 0, from);
            p.conjugate_by(CliffordGate::H, &q);
            assert_eq!((p.pauli(0), p.phase()), (to, ph), "H conj of {from}");
        }
    }

    #[test]
    fn s_gate_conjugation() {
        let q = [Qubit(0)];
        // S X S† = Y
        let mut p = PauliString::single(1, 0, Pauli::X);
        p.conjugate_by(CliffordGate::S, &q);
        assert_eq!((p.pauli(0), p.phase()), (Pauli::Y, 0));
        // S Y S† = -X
        let mut p = PauliString::single(1, 0, Pauli::Y);
        p.conjugate_by(CliffordGate::S, &q);
        assert_eq!((p.pauli(0), p.phase()), (Pauli::X, 2));
        // S† X S = -Y
        let mut p = PauliString::single(1, 0, Pauli::X);
        p.conjugate_by(CliffordGate::Sdg, &q);
        assert_eq!((p.pauli(0), p.phase()), (Pauli::Y, 2));
    }

    #[test]
    fn sqrt_gate_conjugation() {
        let q = [Qubit(0)];
        // √X Y √X† = Z ; √X Z √X† = -Y
        let mut p = PauliString::single(1, 0, Pauli::Y);
        p.conjugate_by(CliffordGate::SqrtX, &q);
        assert_eq!((p.pauli(0), p.phase()), (Pauli::Z, 0));
        let mut p = PauliString::single(1, 0, Pauli::Z);
        p.conjugate_by(CliffordGate::SqrtX, &q);
        assert_eq!((p.pauli(0), p.phase()), (Pauli::Y, 2));
        // √Y Z √Y† = X ; √Y X √Y† = -Z
        let mut p = PauliString::single(1, 0, Pauli::Z);
        p.conjugate_by(CliffordGate::SqrtY, &q);
        assert_eq!((p.pauli(0), p.phase()), (Pauli::X, 0));
        let mut p = PauliString::single(1, 0, Pauli::X);
        p.conjugate_by(CliffordGate::SqrtY, &q);
        assert_eq!((p.pauli(0), p.phase()), (Pauli::Z, 2));
    }

    #[test]
    fn cx_conjugation() {
        let qs = [Qubit(0), Qubit(1)];
        // CX (X⊗I) CX = X⊗X
        let mut p = PauliString::parse("XI").unwrap();
        p.conjugate_by(CliffordGate::Cx, &qs);
        assert_eq!(p.to_string(), "+XX");
        // CX (I⊗Z) CX = Z⊗Z
        let mut p = PauliString::parse("IZ").unwrap();
        p.conjugate_by(CliffordGate::Cx, &qs);
        assert_eq!(p.to_string(), "+ZZ");
        // CX (X⊗Z) CX = -Y⊗Y
        let mut p = PauliString::parse("XZ").unwrap();
        p.conjugate_by(CliffordGate::Cx, &qs);
        assert_eq!(p.to_string(), "-YY");
        // CX (I⊗X) CX = I⊗X
        let mut p = PauliString::parse("IX").unwrap();
        p.conjugate_by(CliffordGate::Cx, &qs);
        assert_eq!(p.to_string(), "+IX");
    }

    #[test]
    fn cz_and_cy_conjugation() {
        let qs = [Qubit(0), Qubit(1)];
        // CZ (X⊗I) CZ = X⊗Z
        let mut p = PauliString::parse("XI").unwrap();
        p.conjugate_by(CliffordGate::Cz, &qs);
        assert_eq!(p.to_string(), "+XZ");
        // CZ (X⊗X) CZ = Y⊗Y
        let mut p = PauliString::parse("XX").unwrap();
        p.conjugate_by(CliffordGate::Cz, &qs);
        assert_eq!(p.to_string(), "+YY");
        // CY (X⊗I) CY = X⊗Y
        let mut p = PauliString::parse("XI").unwrap();
        p.conjugate_by(CliffordGate::Cy, &qs);
        assert_eq!(p.to_string(), "+XY");
        // CY (I⊗Z) CY = Z⊗Z
        let mut p = PauliString::parse("IZ").unwrap();
        p.conjugate_by(CliffordGate::Cy, &qs);
        assert_eq!(p.to_string(), "+ZZ");
    }

    #[test]
    fn swap_conjugation() {
        let mut p = PauliString::parse("XZ").unwrap();
        p.conjugate_by(CliffordGate::Swap, &[Qubit(0), Qubit(1)]);
        assert_eq!(p.to_string(), "+ZX");
    }

    #[test]
    fn conjugation_preserves_commutation() {
        // Conjugation is an automorphism: commutation must be preserved.
        let pairs = [("XI", "ZI"), ("XX", "ZZ"), ("XY", "YZ")];
        for gate in [CliffordGate::Cx, CliffordGate::Cz, CliffordGate::Cy] {
            for (a, b) in pairs {
                let mut pa = PauliString::parse(a).unwrap();
                let mut pb = PauliString::parse(b).unwrap();
                let before = pa.commutes_with(&pb);
                pa.conjugate_by(gate, &[Qubit(0), Qubit(1)]);
                pb.conjugate_by(gate, &[Qubit(0), Qubit(1)]);
                assert_eq!(before, pa.commutes_with(&pb), "{gate:?} {a} {b}");
            }
        }
    }
}
