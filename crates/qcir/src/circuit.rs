//! The circuit container and builder.

use crate::{Gate, NoiseChannel, Qubit};
use std::collections::HashMap;
use std::fmt;

/// The kind of a circuit operation: a unitary gate or a stochastic Pauli
/// noise channel.
///
/// Measurement is implicit: every circuit is measured on all qubits in the
/// computational basis at the end, matching the sampler-style evaluation of
/// the SuperSim paper (5000-shot distributions).
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum OpKind {
    /// A unitary gate.
    Gate(Gate),
    /// A stochastic Pauli noise channel (stabilizer-compatible noise).
    Noise(NoiseChannel),
}

/// A single operation: an [`OpKind`] applied to an ordered list of qubits.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Operation {
    /// What is applied.
    pub kind: OpKind,
    /// The qubits acted on, in gate order (control first for controlled
    /// gates).
    pub qubits: Vec<Qubit>,
}

impl Operation {
    /// Creates a gate operation.
    ///
    /// # Panics
    ///
    /// Panics if the number of qubits does not match the gate arity or the
    /// qubits are not distinct.
    pub fn gate(gate: Gate, qubits: Vec<Qubit>) -> Self {
        assert_eq!(qubits.len(), gate.arity(), "gate arity mismatch");
        if qubits.len() == 2 {
            assert_ne!(qubits[0], qubits[1], "duplicate qubit operands");
        }
        Operation {
            kind: OpKind::Gate(gate),
            qubits,
        }
    }

    /// Creates a noise operation.
    ///
    /// # Panics
    ///
    /// Panics if the number of qubits does not match the channel arity.
    pub fn noise(channel: NoiseChannel, qubits: Vec<Qubit>) -> Self {
        assert_eq!(qubits.len(), channel.arity(), "channel arity mismatch");
        Operation {
            kind: OpKind::Noise(channel),
            qubits,
        }
    }

    /// Returns the unitary gate when the operation is a gate.
    pub fn as_gate(&self) -> Option<Gate> {
        match self.kind {
            OpKind::Gate(g) => Some(g),
            OpKind::Noise(_) => None,
        }
    }

    /// Returns `true` when the operation is a Clifford unitary or a noise
    /// channel (noise channels are stabilizer-compatible by construction).
    pub fn is_clifford(&self) -> bool {
        match self.kind {
            OpKind::Gate(g) => g.is_clifford(),
            OpKind::Noise(_) => true,
        }
    }

    /// Short human-readable description.
    pub fn name(&self) -> String {
        match &self.kind {
            OpKind::Gate(g) => g.name(),
            OpKind::Noise(c) => c.name(),
        }
    }
}

/// An ordered sequence of operations over `n` qubit wires.
///
/// The builder methods take `&mut self` and return `&mut Self` so they can
/// be chained without consuming the circuit:
///
/// ```
/// use qcir::Circuit;
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1);
/// assert_eq!(bell.len(), 2);
/// assert!(bell.is_clifford());
/// ```
#[derive(Clone, Debug, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct Circuit {
    num_qubits: usize,
    ops: Vec<Operation>,
}

impl Circuit {
    /// Creates an empty circuit on `num_qubits` wires.
    pub fn new(num_qubits: usize) -> Self {
        Circuit {
            num_qubits,
            ops: Vec::new(),
        }
    }

    /// Number of qubit wires.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of operations.
    #[inline]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` when the circuit has no operations.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The operations in program order.
    #[inline]
    pub fn ops(&self) -> &[Operation] {
        &self.ops
    }

    /// Appends an operation.
    ///
    /// # Panics
    ///
    /// Panics if any operand qubit is out of range.
    pub fn push(&mut self, op: Operation) -> &mut Self {
        for q in &op.qubits {
            assert!(
                q.index() < self.num_qubits,
                "qubit {q} out of range for {}-qubit circuit",
                self.num_qubits
            );
        }
        self.ops.push(op);
        self
    }

    /// Appends a gate on the given qubits.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch or out-of-range qubits.
    pub fn add_gate(&mut self, gate: Gate, qubits: &[usize]) -> &mut Self {
        let qs = qubits.iter().map(|&q| Qubit(q)).collect();
        self.push(Operation::gate(gate, qs))
    }

    /// Appends a noise channel on the given qubits.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch or out-of-range qubits.
    pub fn add_noise(&mut self, channel: NoiseChannel, qubits: &[usize]) -> &mut Self {
        let qs = qubits.iter().map(|&q| Qubit(q)).collect();
        self.push(Operation::noise(channel, qs))
    }

    /// Appends every operation of `other` (qubit indices unchanged).
    ///
    /// # Panics
    ///
    /// Panics if `other` uses qubits beyond this circuit's width.
    pub fn append(&mut self, other: &Circuit) -> &mut Self {
        for op in other.ops() {
            self.push(op.clone());
        }
        self
    }

    // --- single-qubit gate builders ---

    /// Appends an X gate.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.add_gate(Gate::X, &[q])
    }
    /// Appends a Y gate.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.add_gate(Gate::Y, &[q])
    }
    /// Appends a Z gate.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.add_gate(Gate::Z, &[q])
    }
    /// Appends a Hadamard gate.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.add_gate(Gate::H, &[q])
    }
    /// Appends an S gate.
    pub fn s(&mut self, q: usize) -> &mut Self {
        self.add_gate(Gate::S, &[q])
    }
    /// Appends an S† gate.
    pub fn sdg(&mut self, q: usize) -> &mut Self {
        self.add_gate(Gate::Sdg, &[q])
    }
    /// Appends a T gate.
    pub fn t(&mut self, q: usize) -> &mut Self {
        self.add_gate(Gate::T, &[q])
    }
    /// Appends a T† gate.
    pub fn tdg(&mut self, q: usize) -> &mut Self {
        self.add_gate(Gate::Tdg, &[q])
    }
    /// Appends an Rz rotation.
    pub fn rz(&mut self, q: usize, theta: f64) -> &mut Self {
        self.add_gate(Gate::Rz(theta), &[q])
    }
    /// Appends an Rx rotation.
    pub fn rx(&mut self, q: usize, theta: f64) -> &mut Self {
        self.add_gate(Gate::Rx(theta), &[q])
    }
    /// Appends an Ry rotation.
    pub fn ry(&mut self, q: usize, theta: f64) -> &mut Self {
        self.add_gate(Gate::Ry(theta), &[q])
    }
    /// Appends a Z-power gate `diag(1, e^{iπa})`.
    pub fn zpow(&mut self, q: usize, a: f64) -> &mut Self {
        self.add_gate(Gate::ZPow(a), &[q])
    }

    // --- two-qubit gate builders ---

    /// Appends a CX with `control` and `target`.
    pub fn cx(&mut self, control: usize, target: usize) -> &mut Self {
        self.add_gate(Gate::Cx, &[control, target])
    }
    /// Appends a CY with `control` and `target`.
    pub fn cy(&mut self, control: usize, target: usize) -> &mut Self {
        self.add_gate(Gate::Cy, &[control, target])
    }
    /// Appends a CZ.
    pub fn cz(&mut self, a: usize, b: usize) -> &mut Self {
        self.add_gate(Gate::Cz, &[a, b])
    }
    /// Appends a SWAP.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.add_gate(Gate::Swap, &[a, b])
    }

    // --- statistics ---

    /// Returns `true` when every operation is Clifford (noise channels are
    /// stabilizer-compatible and count as Clifford).
    pub fn is_clifford(&self) -> bool {
        self.ops.iter().all(Operation::is_clifford)
    }

    /// Indices (into [`Circuit::ops`]) of non-Clifford operations.
    pub fn non_clifford_indices(&self) -> Vec<usize> {
        (0..self.ops.len())
            .filter(|&i| !self.ops[i].is_clifford())
            .collect()
    }

    /// Number of non-Clifford operations.
    pub fn non_clifford_count(&self) -> usize {
        self.non_clifford_indices().len()
    }

    /// Number of `T`/`T†` gates (including `ZPow(±1/4)`-style rotations is
    /// deliberately *not* attempted; this counts the named gates).
    pub fn t_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op.kind, OpKind::Gate(Gate::T) | OpKind::Gate(Gate::Tdg)))
            .count()
    }

    /// Greedy-layered circuit depth (noise channels do not add depth).
    pub fn depth(&self) -> usize {
        let mut frontier = vec![0usize; self.num_qubits];
        let mut depth = 0;
        for op in &self.ops {
            if matches!(op.kind, OpKind::Noise(_)) {
                continue;
            }
            let layer = op
                .qubits
                .iter()
                .map(|q| frontier[q.index()])
                .max()
                .unwrap_or(0)
                + 1;
            for q in &op.qubits {
                frontier[q.index()] = layer;
            }
            depth = depth.max(layer);
        }
        depth
    }

    /// Histogram of gate names to occurrence counts.
    pub fn gate_counts(&self) -> HashMap<String, usize> {
        let mut counts = HashMap::new();
        for op in &self.ops {
            *counts.entry(op.name()).or_insert(0) += 1;
        }
        counts
    }

    /// Returns `true` when the circuit contains any noise channel.
    pub fn has_noise(&self) -> bool {
        self.ops
            .iter()
            .any(|op| matches!(op.kind, OpKind::Noise(_)))
    }

    /// The circuit restricted to its unitary gates (noise removed).
    pub fn without_noise(&self) -> Circuit {
        let ops = self
            .ops
            .iter()
            .filter(|op| matches!(op.kind, OpKind::Gate(_)))
            .cloned()
            .collect();
        Circuit {
            num_qubits: self.num_qubits,
            ops,
        }
    }

    /// A 64-bit structural fingerprint of the circuit: an FNV-1a hash over
    /// the qubit count and every operation (kind, exact parameter bits,
    /// operand order). Used to tag diagnostics — batch errors carry the
    /// fingerprint of the failing circuit so a job can be identified
    /// without holding the circuit itself. Stable within a process run and
    /// across thread counts; not a cryptographic digest.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        eat(&(self.num_qubits as u64).to_le_bytes());
        for op in &self.ops {
            // The Debug form spells out the kind discriminant and the full
            // float parameters; operand order follows separately.
            eat(format!("{:?}", op.kind).as_bytes());
            for &q in &op.qubits {
                eat(&(q.0 as u64).to_le_bytes());
            }
        }
        h
    }

    /// The adjoint (inverse) circuit; only defined for noise-free circuits.
    ///
    /// # Panics
    ///
    /// Panics if the circuit contains noise channels, which are not
    /// invertible.
    pub fn adjoint(&self) -> Circuit {
        let ops = self
            .ops
            .iter()
            .rev()
            .map(|op| match op.kind {
                OpKind::Gate(g) => Operation::gate(g.adjoint(), op.qubits.clone()),
                OpKind::Noise(_) => panic!("cannot invert a noisy circuit"),
            })
            .collect();
        Circuit {
            num_qubits: self.num_qubits,
            ops,
        }
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Circuit({} qubits, {} ops):",
            self.num_qubits,
            self.len()
        )?;
        for op in &self.ops {
            let qs: Vec<String> = op.qubits.iter().map(|q| q.to_string()).collect();
            writeln!(f, "  {} {}", op.name(), qs.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).t(1).rz(0, 0.5);
        assert_eq!(c.len(), 4);
        assert_eq!(c.num_qubits(), 2);
        assert_eq!(c.t_count(), 1);
        assert_eq!(c.non_clifford_count(), 2); // T and Rz(0.5)
    }

    #[test]
    fn clifford_detection() {
        let mut c = Circuit::new(2);
        c.h(0).s(1).cx(0, 1).rz(0, std::f64::consts::PI / 2.0);
        assert!(c.is_clifford());
        c.t(0);
        assert!(!c.is_clifford());
        assert_eq!(c.non_clifford_indices(), vec![4]);
    }

    #[test]
    fn depth_layering() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2); // layer 1
        c.cx(0, 1); // layer 2
        c.cx(1, 2); // layer 3
        c.x(0); // fits in layer 3
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn noise_does_not_add_depth() {
        let mut c = Circuit::new(1);
        c.h(0);
        c.add_noise(NoiseChannel::BitFlip(0.1), &[0]);
        c.h(0);
        assert_eq!(c.depth(), 2);
        assert!(c.has_noise());
        assert_eq!(c.without_noise().len(), 2);
        assert!(!c.without_noise().has_noise());
    }

    #[test]
    fn adjoint_reverses_and_inverts() {
        let mut c = Circuit::new(2);
        c.h(0).s(0).cx(0, 1).t(1);
        let a = c.adjoint();
        assert_eq!(a.len(), 4);
        assert_eq!(a.ops()[0].as_gate(), Some(Gate::Tdg));
        assert_eq!(a.ops()[3].as_gate(), Some(Gate::H));
    }

    #[test]
    fn gate_counts_histogram() {
        let mut c = Circuit::new(2);
        c.h(0).h(1).cx(0, 1).t(0);
        let counts = c.gate_counts();
        assert_eq!(counts["H"], 2);
        assert_eq!(counts["CX"], 1);
        assert_eq!(counts["T"], 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_qubit_panics() {
        let mut c = Circuit::new(1);
        c.h(1);
    }

    #[test]
    #[should_panic(expected = "duplicate qubit")]
    fn duplicate_two_qubit_operands_panic() {
        let mut c = Circuit::new(2);
        c.cx(1, 1);
    }

    #[test]
    fn display_contains_ops() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let s = c.to_string();
        assert!(s.contains("H q0"));
        assert!(s.contains("CX q0, q1"));
    }
}
