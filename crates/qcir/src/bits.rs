//! Compact bitstrings for measurement outcomes.

use crate::simd::{self, W4};
use std::fmt;

/// A fixed-length bitstring packed into 64-bit words.
///
/// Bit `i` corresponds to qubit `i` of a measurement record. The [`Display`]
/// form prints bit 0 leftmost, matching the qubit-ordering convention used
/// throughout SuperSim-RS.
///
/// ```
/// use qcir::Bits;
/// let mut b = Bits::zeros(4);
/// b.set(1, true);
/// b.set(3, true);
/// assert_eq!(b.to_string(), "0101");
/// assert_eq!(b.count_ones(), 2);
/// ```
///
/// [`Display`]: std::fmt::Display
///
/// Invariant: bits at positions `len..` of the backing words are always
/// zero — every constructor and mutator maintains this, which lets the
/// word-level kernels ([`Bits::extract`], [`Bits::concat`],
/// [`Bits::scatter`]) copy whole words without masking.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
pub struct Bits {
    len: usize,
    words: Vec<u64>,
}

impl Bits {
    /// Creates an all-zero bitstring of length `len`.
    pub fn zeros(len: usize) -> Self {
        Bits {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Creates a bitstring of length `len` from the low bits of `value`.
    ///
    /// Bit `i` of the result equals bit `i` of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `len > 64`.
    pub fn from_u64(value: u64, len: usize) -> Self {
        assert!(len <= 64, "from_u64 supports at most 64 bits");
        let mut b = Bits::zeros(len);
        if len > 0 {
            let mask = if len == 64 {
                u64::MAX
            } else {
                (1u64 << len) - 1
            };
            b.words[0] = value & mask;
        }
        b
    }

    /// Creates a bitstring from a slice of booleans (`bools[i]` → bit `i`).
    pub fn from_bools(bools: &[bool]) -> Self {
        let mut b = Bits::zeros(bools.len());
        for (i, &v) in bools.iter().enumerate() {
            b.set(i, v);
        }
        b
    }

    /// Parses a string of `'0'`/`'1'` characters (leftmost character → bit 0).
    ///
    /// Returns `None` when any other character is present.
    pub fn parse(s: &str) -> Option<Self> {
        let mut b = Bits::zeros(s.len());
        for (i, c) in s.chars().enumerate() {
            match c {
                '0' => {}
                '1' => b.set(i, true),
                _ => return None,
            }
        }
        Some(b)
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the bitstring has zero length.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Value of bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let w = &mut self.words[i / 64];
        let m = 1u64 << (i % 64);
        if value {
            *w |= m;
        } else {
            *w &= !m;
        }
    }

    /// Flips bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn flip(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / 64] ^= 1u64 << (i % 64);
    }

    /// XORs another bitstring of the same length into `self`.
    ///
    /// Runs on the [`simd`] `u64×4`-block kernels so the hot GF(2) row
    /// operations (tableau rowsums, Pauli products, affine-support
    /// sampling) vectorize.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    #[inline]
    pub fn xor_assign(&mut self, other: &Bits) {
        assert_eq!(self.len, other.len, "length mismatch");
        simd::xor_into(&mut self.words, &other.words);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        simd::popcount(&self.words)
    }

    /// Number of positions where both `self` and `other` are set
    /// (`popcount(self & other)`), without materializing the AND.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    #[inline]
    pub fn and_count_ones(&self, other: &Bits) -> u32 {
        assert_eq!(self.len, other.len, "length mismatch");
        simd::and_popcount(&self.words, &other.words)
    }

    /// Returns `true` when no bit is set.
    ///
    /// Short-circuiting block scan — unlike `count_ones() == 0` it stops
    /// at the first nonzero block instead of popcounting the whole string.
    #[inline]
    pub fn is_zero(&self) -> bool {
        !simd::any_nonzero(&self.words)
    }

    /// Parity (mod-2 sum) of all bits.
    ///
    /// XOR-folds the words into one accumulator and popcounts once —
    /// XOR preserves popcount parity, so this matches the per-word
    /// popcount sum while doing a single `popcnt` at the end.
    #[inline]
    pub fn parity(&self) -> bool {
        simd::xor_fold(&self.words).count_ones() % 2 == 1
    }

    /// Parity of the AND with `other` — the GF(2) inner product.
    ///
    /// Same XOR-fold trick as [`Bits::parity`]: the per-word ANDs are
    /// XOR-folded (parity-preserving) and popcounted once.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    #[inline]
    pub fn dot(&self, other: &Bits) -> bool {
        assert_eq!(self.len, other.len, "length mismatch");
        simd::and_xor_fold(&self.words, &other.words).count_ones() % 2 == 1
    }

    /// Read-only view of the backing words (bit `i` of word `w` = bit
    /// `64w + i` of the string; `len..` padding bits are zero).
    ///
    /// Lets word-level consumers (e.g. the tableau's flat bit-plane
    /// arena) mix `Bits` values into slice-based kernels such as
    /// [`pauli_mul_phase_words`] without per-bit accessors.
    #[inline]
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Overwrites the backing words from a slice.
    ///
    /// The caller must supply exactly the backing word count and keep the
    /// `len..` padding invariant: bits at positions `len..` of the final
    /// word must be zero (debug-asserted).
    ///
    /// # Panics
    ///
    /// Panics if `words.len()` differs from the backing word count.
    #[inline]
    pub fn copy_from_words(&mut self, words: &[u64]) {
        debug_assert!(
            self.len % 64 == 0 || words.last().is_none_or(|&w| w >> (self.len % 64) == 0),
            "copy_from_words source sets padding bits"
        );
        self.words.copy_from_slice(words);
    }

    /// XORs `mask` into word `w` of the backing storage.
    ///
    /// The caller must keep the `len..` padding invariant: bits of `mask`
    /// at positions `len..` must be zero (debug-asserted).
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range.
    #[inline]
    pub fn xor_word(&mut self, w: usize, mask: u64) {
        debug_assert!(
            {
                let lo = w * 64;
                let valid = if self.len >= lo + 64 {
                    u64::MAX
                } else if self.len > lo {
                    (1u64 << (self.len - lo)) - 1
                } else {
                    0
                };
                mask & !valid == 0
            },
            "xor_word mask touches padding bits"
        );
        self.words[w] ^= mask;
    }

    /// The bitstring as a `u64`, when it fits.
    pub fn to_u64(&self) -> Option<u64> {
        if self.len <= 64 {
            Some(self.words.first().copied().unwrap_or(0))
        } else {
            None
        }
    }

    /// Overwrites `self` with `other`'s bits without reallocating.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    #[inline]
    pub fn copy_from(&mut self, other: &Bits) {
        assert_eq!(self.len, other.len, "length mismatch");
        self.words.copy_from_slice(&other.words);
    }

    /// Extracts the bits at `indices` (in order) into a new bitstring.
    ///
    /// Word-level kernel: output bits are packed into 64-bit accumulators
    /// instead of being set one at a time.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn extract(&self, indices: &[usize]) -> Bits {
        let mut out = Bits::zeros(indices.len());
        let mut acc = 0u64;
        let mut w = 0;
        for (k, &i) in indices.iter().enumerate() {
            assert!(i < self.len, "bit index {i} out of range {}", self.len);
            let bit = (self.words[i >> 6] >> (i & 63)) & 1;
            acc |= bit << (k & 63);
            if k & 63 == 63 {
                out.words[w] = acc;
                acc = 0;
                w += 1;
            }
        }
        if indices.len() & 63 != 0 {
            out.words[w] = acc;
        }
        out
    }

    /// Concatenates two bitstrings (`self` occupies the low bit positions).
    ///
    /// Word-level kernel: `other`'s words are shifted into place instead of
    /// copying bit by bit.
    pub fn concat(&self, other: &Bits) -> Bits {
        let len = self.len + other.len;
        let mut out = Bits::zeros(len);
        out.words[..self.words.len()].copy_from_slice(&self.words);
        let base = self.len >> 6;
        let shift = self.len & 63;
        if shift == 0 {
            out.words[base..base + other.words.len()].copy_from_slice(&other.words);
        } else {
            for (j, &w) in other.words.iter().enumerate() {
                out.words[base + j] |= w << shift;
                let carry = w >> (64 - shift);
                if carry != 0 {
                    out.words[base + j + 1] |= carry;
                }
            }
        }
        out
    }

    /// Iterator over the bits in index order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Scatter: writes `self`'s bits into positions `positions` of a
    /// zero-initialized bitstring of length `total_len`.
    ///
    /// # Panics
    ///
    /// Panics if `positions.len() != self.len()` or a position is out of range.
    pub fn scatter(&self, positions: &[usize], total_len: usize) -> Bits {
        assert_eq!(positions.len(), self.len, "positions/len mismatch");
        let mut out = Bits::zeros(total_len);
        for (k, &p) in positions.iter().enumerate() {
            assert!(p < total_len, "bit index {p} out of range {total_len}");
            // The output starts zeroed, so an OR suffices.
            let bit = (self.words[k >> 6] >> (k & 63)) & 1;
            out.words[p >> 6] |= bit << (p & 63);
        }
        out
    }

    /// A fast 64-bit hash of the bitstring (FxHash-style word fold).
    ///
    /// Intended for open-addressed hash tables and intern pools over
    /// outcome keys, where the per-key cost of the standard `Hasher`
    /// machinery dominates; not a cryptographic hash. Equal bitstrings
    /// hash equally (the `len..` word invariant keeps padding bits zero).
    #[inline]
    pub fn hash_u64(&self) -> u64 {
        const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
        let mut h = self.len as u64;
        for &w in &self.words {
            h = (h.rotate_left(5) ^ w).wrapping_mul(SEED);
        }
        // Final avalanche so low table-index bits depend on every word.
        h ^= h >> 32;
        h.wrapping_mul(SEED)
    }

    /// Writes `self`'s bits into positions `positions` of `target` in place.
    ///
    /// # Panics
    ///
    /// Panics if `positions.len() != self.len()` or a position is out of range.
    pub fn scatter_into(&self, positions: &[usize], target: &mut Bits) {
        assert_eq!(positions.len(), self.len, "positions/len mismatch");
        for (k, &p) in positions.iter().enumerate() {
            assert!(p < target.len, "bit index {p} out of range {}", target.len);
            let bit = (self.words[k >> 6] >> (k & 63)) & 1;
            let m = 1u64 << (p & 63);
            let w = &mut target.words[p >> 6];
            *w = (*w & !m) | (bit << (p & 63));
        }
    }
}

/// Fused GF(2) multiply-and-phase kernel for Pauli rows in the
/// Aaronson–Gottesman `(x, z)` encoding (`Y` ≡ `(1,1)` with no per-qubit
/// phase): performs `(x2, z2) := (x1 ⊕ x2, z1 ⊕ z2)` in place and returns
/// the exponent of `i` picked up by the product `P(x1,z1) · P(x2,z2)`,
/// mod 4.
///
/// This is the word-parallel replacement for the per-qubit `g()` phase
/// match of the textbook rowsum: anticommuting bit positions contribute
/// `±1` to the `i`-exponent, and the kernel accumulates those
/// contributions in two carry-save bit-planes per word (`cnt1` = low
/// counter bit per lane, `cnt2` = high bit, i.e. a 2-bit saturating-free
/// counter mod 4 per bit lane). Adding `+1` to a lane flips `cnt1` and
/// carries into `cnt2`; adding `−1` (≡ `+3`) additionally flips `cnt2`,
/// and the "was this a `−1`" predicate reduces to
/// `newx ⊕ newz ⊕ (x1 & z2)` on anticommuting lanes. The total exponent
/// is then `popcount(cnt1) + 2·popcount(cnt2) (mod 4)` — per-lane counts
/// mod 4 sum to the true count mod 4.
///
/// The `len..` padding invariant guarantees the slack bits of the last
/// word never anticommute, so no tail masking is needed.
///
/// # Panics
///
/// Panics when the four rows do not share one length.
#[inline]
pub fn pauli_mul_phase(x1: &Bits, z1: &Bits, x2: &mut Bits, z2: &mut Bits) -> u8 {
    assert!(
        x1.len == z1.len && x1.len == x2.len && x1.len == z2.len,
        "length mismatch"
    );
    pauli_mul_phase_words(&x1.words, &z1.words, &mut x2.words, &mut z2.words)
}

/// Word-slice form of [`pauli_mul_phase`], for callers that keep rows in
/// a flat word arena (the tableau's bit-plane layout) rather than in
/// `Bits` values. Identical semantics; slack bits beyond the operand
/// width must be zero in all four slices (the `Bits` padding invariant).
///
/// # Panics
///
/// Panics when the four slices do not share one length.
#[inline]
pub fn pauli_mul_phase_words(x1: &[u64], z1: &[u64], x2: &mut [u64], z2: &mut [u64]) -> u8 {
    assert!(
        x1.len() == z1.len() && x1.len() == x2.len() && x1.len() == z2.len(),
        "length mismatch"
    );
    // Block pass: the carry-save counters live in 4-lane accumulators,
    // one independent mod-4 counter per bit lane. Lane counts mod 4 sum
    // to the true count mod 4, so the block and scalar-tail accumulators
    // just add at the end.
    let mut c1 = W4::ZERO;
    let mut c2 = W4::ZERO;
    let mut x1b = x1.chunks_exact(simd::LANES);
    let mut z1b = z1.chunks_exact(simd::LANES);
    let mut x2b = x2.chunks_exact_mut(simd::LANES);
    let mut z2b = z2.chunks_exact_mut(simd::LANES);
    for (((x1w, z1w), x2w), z2w) in x1b
        .by_ref()
        .zip(z1b.by_ref())
        .zip(x2b.by_ref())
        .zip(z2b.by_ref())
    {
        let x1v = W4::load(x1w);
        let z1v = W4::load(z1w);
        let x2v = W4::load(x2w);
        let z2v = W4::load(z2w);
        let newx = x1v ^ x2v;
        let newz = z1v ^ z2v;
        let x1z2 = x1v & z2v;
        let anti = (z1v & x2v) ^ x1z2;
        c2 = c2 ^ ((c1 ^ newx ^ newz ^ x1z2) & anti);
        c1 = c1 ^ anti;
        newx.store(x2w);
        newz.store(z2w);
    }
    let mut cnt1 = 0u64;
    let mut cnt2 = 0u64;
    for (((&x1w, &z1w), x2w), z2w) in x1b
        .remainder()
        .iter()
        .zip(z1b.remainder())
        .zip(x2b.into_remainder())
        .zip(z2b.into_remainder())
    {
        let newx = x1w ^ *x2w;
        let newz = z1w ^ *z2w;
        let x1z2 = x1w & *z2w;
        let anti = (z1w & *x2w) ^ x1z2;
        cnt2 ^= (cnt1 ^ newx ^ newz ^ x1z2) & anti;
        cnt1 ^= anti;
        *x2w = newx;
        *z2w = newz;
    }
    let ones = c1.count_ones() + cnt1.count_ones();
    let twos = c2.count_ones() + cnt2.count_ones();
    ((ones + 2 * twos) % 4) as u8
}

/// Precomputed word/shift tables for repeated [`Bits::extract`] /
/// [`Bits::scatter_into`] over a fixed index list.
///
/// The cutting pipeline extracts the same index lists (a fragment's
/// circuit-output positions, its global qubit positions) once per sampled
/// outcome and once per cut assignment; a plan hoists the per-index
/// division/mask arithmetic and the bounds checks out of those hot loops.
#[derive(Clone, Debug)]
pub struct IndexPlan {
    domain_len: usize,
    /// Word index of each position in the domain-side bitstring.
    word: Vec<u32>,
    /// Bit shift of each position within its word.
    shift: Vec<u8>,
}

impl IndexPlan {
    /// Builds a plan for `indices` into bitstrings of length `domain_len`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn new(indices: &[usize], domain_len: usize) -> Self {
        let mut word = Vec::with_capacity(indices.len());
        let mut shift = Vec::with_capacity(indices.len());
        for &i in indices {
            assert!(i < domain_len, "bit index {i} out of range {domain_len}");
            word.push((i >> 6) as u32);
            shift.push((i & 63) as u8);
        }
        IndexPlan {
            domain_len,
            word,
            shift,
        }
    }

    /// Number of planned indices.
    #[inline]
    pub fn len(&self) -> usize {
        self.word.len()
    }

    /// Returns `true` when the plan covers no indices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.word.is_empty()
    }

    /// Equivalent of `src.extract(indices)` using the precomputed tables.
    ///
    /// # Panics
    ///
    /// Panics if `src.len()` differs from the plan's domain length.
    pub fn extract(&self, src: &Bits) -> Bits {
        let mut out = Bits::zeros(self.len());
        self.extract_into(src, &mut out);
        out
    }

    /// [`IndexPlan::extract`] into a caller-provided scratch bitstring,
    /// reusing its allocation: `out` is resized to the plan length and
    /// every word is overwritten. The hot accumulation loops of the
    /// evaluation stage call this once per observed outcome, so reusing
    /// one scratch `Bits` removes a heap allocation per data entry.
    ///
    /// # Panics
    ///
    /// Panics if `src.len()` differs from the plan's domain length.
    pub fn extract_into(&self, src: &Bits, out: &mut Bits) {
        assert_eq!(src.len, self.domain_len, "domain length mismatch");
        let n = self.len();
        out.len = n;
        out.words.resize(n.div_ceil(64), 0);
        let mut acc = 0u64;
        let mut w = 0;
        for k in 0..n {
            let bit = (src.words[self.word[k] as usize] >> self.shift[k]) & 1;
            acc |= bit << (k & 63);
            if k & 63 == 63 {
                out.words[w] = acc;
                acc = 0;
                w += 1;
            }
        }
        if n & 63 != 0 {
            out.words[w] = acc;
        }
    }

    /// Equivalent of `src.scatter_into(indices, target)` using the
    /// precomputed tables.
    ///
    /// # Panics
    ///
    /// Panics if `src.len()` differs from the plan length or `target.len()`
    /// from the plan's domain length.
    pub fn scatter_into(&self, src: &Bits, target: &mut Bits) {
        assert_eq!(src.len, self.len(), "source length mismatch");
        assert_eq!(target.len, self.domain_len, "domain length mismatch");
        for k in 0..self.len() {
            let bit = (src.words[k >> 6] >> (k & 63)) & 1;
            let m = 1u64 << self.shift[k];
            let w = &mut target.words[self.word[k] as usize];
            *w = (*w & !m) | (bit << self.shift[k]);
        }
    }
}

impl fmt::Display for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

impl fmt::Debug for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bits(\"{self}\")")
    }
}

impl FromIterator<bool> for Bits {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let bools: Vec<bool> = iter.into_iter().collect();
        Bits::from_bools(&bools)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_flip() {
        let mut b = Bits::zeros(130);
        assert_eq!(b.count_ones(), 0);
        b.set(0, true);
        b.set(64, true);
        b.set(129, true);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(63) && !b.get(128));
        assert_eq!(b.count_ones(), 3);
        b.flip(64);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn display_roundtrip() {
        let b = Bits::parse("0110010").unwrap();
        assert_eq!(b.to_string(), "0110010");
        assert_eq!(b.len(), 7);
        assert!(Bits::parse("01x").is_none());
    }

    #[test]
    fn from_u64_bit_order() {
        let b = Bits::from_u64(0b1101, 4);
        // bit 0 of value -> bit 0 of string (leftmost)
        assert_eq!(b.to_string(), "1011");
        assert_eq!(b.to_u64(), Some(0b1101));
    }

    #[test]
    fn xor_and_dot() {
        let a = Bits::parse("1100").unwrap();
        let b = Bits::parse("1010").unwrap();
        let mut c = a.clone();
        c.xor_assign(&b);
        assert_eq!(c.to_string(), "0110");
        // dot = parity of AND = parity of "1000" = 1
        assert!(a.dot(&b));
        assert!(!a.dot(&a.clone()) ^ (a.count_ones() % 2 == 1));
    }

    #[test]
    fn extract_and_scatter() {
        let b = Bits::parse("10110").unwrap();
        let e = b.extract(&[4, 0, 2]);
        assert_eq!(e.to_string(), "011");
        let s = e.scatter(&[1, 3, 5], 7);
        assert_eq!(s.to_string(), "0001010");
    }

    #[test]
    fn concat_orders_low_then_high() {
        let a = Bits::parse("10").unwrap();
        let b = Bits::parse("011").unwrap();
        assert_eq!(a.concat(&b).to_string(), "10011");
    }

    #[test]
    fn hash_eq_in_map() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(Bits::parse("01").unwrap(), 1.0);
        *m.entry(Bits::parse("01").unwrap()).or_insert(0.0) += 1.0;
        assert_eq!(m.len(), 1);
        assert_eq!(m[&Bits::parse("01").unwrap()], 2.0);
    }

    #[test]
    fn empty_bits() {
        let b = Bits::zeros(0);
        assert!(b.is_empty());
        assert_eq!(b.to_string(), "");
        assert_eq!(b.to_u64(), Some(0));
        let c = b.concat(&Bits::parse("1").unwrap());
        assert_eq!(c.to_string(), "1");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        let b = Bits::zeros(3);
        let _ = b.get(3);
    }

    /// Bit-at-a-time reference implementations the word-level kernels are
    /// checked against.
    mod reference {
        use super::Bits;

        pub fn extract(src: &Bits, indices: &[usize]) -> Bits {
            let mut out = Bits::zeros(indices.len());
            for (k, &i) in indices.iter().enumerate() {
                out.set(k, src.get(i));
            }
            out
        }

        pub fn concat(a: &Bits, b: &Bits) -> Bits {
            let mut out = Bits::zeros(a.len() + b.len());
            for i in 0..a.len() {
                out.set(i, a.get(i));
            }
            for i in 0..b.len() {
                out.set(a.len() + i, b.get(i));
            }
            out
        }

        pub fn scatter_into(src: &Bits, positions: &[usize], target: &mut Bits) {
            for (k, &p) in positions.iter().enumerate() {
                target.set(p, src.get(k));
            }
        }
    }

    fn patterned(len: usize, seed: u64) -> Bits {
        let mut b = Bits::zeros(len);
        let mut x = seed | 1;
        for i in 0..len {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            b.set(i, x >> 63 == 1);
        }
        b
    }

    #[test]
    fn word_level_kernels_match_reference_across_boundaries() {
        for &len in &[1usize, 7, 63, 64, 65, 127, 128, 130, 200] {
            let src = patterned(len, len as u64);
            // Strided + reversed index lists exercise unordered access.
            let indices: Vec<usize> = (0..len).step_by(3).collect();
            let rev: Vec<usize> = (0..len).rev().step_by(2).collect();
            for idx in [&indices, &rev] {
                assert_eq!(
                    src.extract(idx),
                    reference::extract(&src, idx),
                    "extract len {len}"
                );
                let small = patterned(idx.len(), 99 + len as u64);
                let mut a = patterned(len, 7);
                let mut b = a.clone();
                small.scatter_into(idx, &mut a);
                reference::scatter_into(&small, idx, &mut b);
                assert_eq!(a, b, "scatter_into len {len}");
                assert_eq!(
                    small.scatter(idx, len),
                    {
                        let mut z = Bits::zeros(len);
                        reference::scatter_into(&small, idx, &mut z);
                        z
                    },
                    "scatter len {len}"
                );
            }
        }
    }

    #[test]
    fn concat_matches_reference_across_boundaries() {
        for &la in &[0usize, 1, 63, 64, 65, 130] {
            for &lb in &[0usize, 1, 63, 64, 65, 130] {
                let a = patterned(la, la as u64 + 1);
                let b = patterned(lb, lb as u64 + 2);
                assert_eq!(a.concat(&b), reference::concat(&a, &b), "concat {la}+{lb}");
            }
        }
    }

    #[test]
    fn index_plan_matches_direct_kernels() {
        let src = patterned(130, 5);
        let indices: Vec<usize> = vec![0, 63, 64, 65, 129, 1, 128];
        let plan = IndexPlan::new(&indices, 130);
        assert_eq!(plan.len(), indices.len());
        assert!(!plan.is_empty());
        assert_eq!(plan.extract(&src), src.extract(&indices));
        let small = patterned(indices.len(), 11);
        let mut a = patterned(130, 17);
        let mut b = a.clone();
        plan.scatter_into(&small, &mut a);
        small.scatter_into(&indices, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_plan_out_of_range_panics() {
        let _ = IndexPlan::new(&[4], 4);
    }

    #[test]
    fn extract_into_reuses_scratch_across_plan_widths() {
        // One scratch reused across plans of different lengths (shrinking,
        // growing, word-boundary, empty) must always equal a fresh extract,
        // including the zero-padding invariant of the partial word.
        let src = patterned(130, 9);
        let mut scratch = Bits::zeros(0);
        let plans: Vec<Vec<usize>> = vec![
            (0..100).collect(),
            vec![129, 0, 64],
            (0..64).collect(),
            vec![],
            (0..65).rev().collect(),
        ];
        for indices in &plans {
            let plan = IndexPlan::new(indices, 130);
            plan.extract_into(&src, &mut scratch);
            assert_eq!(scratch, plan.extract(&src), "indices {indices:?}");
            assert_eq!(scratch, src.extract(indices));
        }
        // Stale high bits from a longer previous extraction must not leak
        // into the padding of a shorter one (Ord/Eq read whole words).
        let ones = Bits::from_bools(&[true; 130]);
        let long = IndexPlan::new(&(0..128).collect::<Vec<_>>(), 130);
        long.extract_into(&ones, &mut scratch);
        let short = IndexPlan::new(&[5], 130);
        short.extract_into(&ones, &mut scratch);
        assert_eq!(scratch, Bits::from_bools(&[true]));
        assert_eq!(scratch.count_ones(), 1);
    }

    #[test]
    fn hash_u64_consistent_with_equality() {
        use std::collections::HashSet;
        // Equal values hash equally, including across construction routes.
        let a = Bits::parse("0110010").unwrap();
        let b = Bits::from_bools(&[false, true, true, false, false, true, false]);
        assert_eq!(a, b);
        assert_eq!(a.hash_u64(), b.hash_u64());
        // Same words, different length must differ (length is mixed in).
        assert_ne!(Bits::zeros(3).hash_u64(), Bits::zeros(4).hash_u64());
        // No collisions over a small dense universe (8-bit strings) and a
        // multi-word sample — a sanity floor for table quality, not a
        // universal guarantee.
        let mut seen = HashSet::new();
        for x in 0..256u64 {
            assert!(
                seen.insert(Bits::from_u64(x, 8).hash_u64()),
                "collision at {x}"
            );
        }
        let mut seen = HashSet::new();
        for s in 0..512u64 {
            // `patterned` ORs 1 into the seed, so use odd seeds only.
            let b = patterned(130, 2 * s + 1);
            assert!(seen.insert(b.hash_u64()), "collision at seed {s}");
        }
    }

    #[test]
    fn packed_kernels_match_bit_at_a_time_reference() {
        for &len in &[0usize, 1, 7, 63, 64, 65, 127, 128, 130, 200, 300] {
            let a = patterned(len, 2 * len as u64 + 1);
            let b = patterned(len, 2 * len as u64 + 5);
            // parity / dot / and_count_ones / is_zero against per-bit loops.
            let slow_parity = (0..len).filter(|&i| a.get(i)).count() % 2 == 1;
            assert_eq!(a.parity(), slow_parity, "parity len {len}");
            let slow_dot = (0..len).filter(|&i| a.get(i) && b.get(i)).count() % 2 == 1;
            assert_eq!(a.dot(&b), slow_dot, "dot len {len}");
            let slow_and = (0..len).filter(|&i| a.get(i) && b.get(i)).count() as u32;
            assert_eq!(a.and_count_ones(&b), slow_and, "and_count_ones len {len}");
            assert_eq!(a.is_zero(), a.count_ones() == 0, "is_zero len {len}");
            assert!(Bits::zeros(len).is_zero());
            let mut c = a.clone();
            c.xor_assign(&b);
            for i in 0..len {
                assert_eq!(c.get(i), a.get(i) ^ b.get(i), "xor_assign bit {i}");
            }
            c.xor_assign(&c.clone());
            assert!(c.is_zero(), "x ^ x must be zero");
            assert_eq!(c.len(), len);
        }
    }

    /// Per-qubit reference for the fused Pauli kernel: the textbook
    /// Aaronson–Gottesman `g()` phase match, accumulated qubit by qubit.
    fn reference_pauli_mul_phase(x1: &Bits, z1: &Bits, x2: &mut Bits, z2: &mut Bits) -> u8 {
        let mut ph: i32 = 0;
        for q in 0..x1.len() {
            let (a, b) = (x1.get(q), z1.get(q));
            let (c, d) = (x2.get(q), z2.get(q));
            ph += match (a, b) {
                (false, false) => 0,
                (true, true) => d as i32 - c as i32,
                (true, false) => d as i32 * (2 * c as i32 - 1),
                (false, true) => c as i32 * (1 - 2 * d as i32),
            };
            x2.set(q, a ^ c);
            z2.set(q, b ^ d);
        }
        ph.rem_euclid(4) as u8
    }

    #[test]
    fn pauli_mul_phase_matches_g_function_reference() {
        // Dense 2-qubit sweep covers every per-qubit Pauli pairing,
        // including both anticommuting orientations.
        for bits in 0..256u64 {
            let x1 = Bits::from_u64(bits & 3, 2);
            let z1 = Bits::from_u64((bits >> 2) & 3, 2);
            let mut x2 = Bits::from_u64((bits >> 4) & 3, 2);
            let mut z2 = Bits::from_u64((bits >> 6) & 3, 2);
            let mut rx2 = x2.clone();
            let mut rz2 = z2.clone();
            let got = pauli_mul_phase(&x1, &z1, &mut x2, &mut z2);
            let want = reference_pauli_mul_phase(&x1, &z1, &mut rx2, &mut rz2);
            assert_eq!(got, want, "phase mismatch at case {bits}");
            assert_eq!(x2, rx2);
            assert_eq!(z2, rz2);
        }
        // Multi-word rows exercise the cross-word carry-save accumulation.
        for &len in &[63usize, 64, 65, 130, 200] {
            for seed in 0..8u64 {
                let x1 = patterned(len, 4 * seed + 1);
                let z1 = patterned(len, 4 * seed + 3);
                let mut x2 = patterned(len, 4 * seed + 5);
                let mut z2 = patterned(len, 4 * seed + 7);
                let mut rx2 = x2.clone();
                let mut rz2 = z2.clone();
                let got = pauli_mul_phase(&x1, &z1, &mut x2, &mut z2);
                let want = reference_pauli_mul_phase(&x1, &z1, &mut rx2, &mut rz2);
                assert_eq!(got, want, "phase mismatch len {len} seed {seed}");
                assert_eq!(x2, rx2, "x mismatch len {len} seed {seed}");
                assert_eq!(z2, rz2, "z mismatch len {len} seed {seed}");
            }
        }
    }

    #[test]
    fn copy_from_reuses_allocation() {
        let src = patterned(130, 3);
        let mut dst = Bits::zeros(130);
        dst.copy_from(&src);
        assert_eq!(dst, src);
    }
}
