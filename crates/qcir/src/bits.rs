//! Compact bitstrings for measurement outcomes.

use std::fmt;

/// A fixed-length bitstring packed into 64-bit words.
///
/// Bit `i` corresponds to qubit `i` of a measurement record. The [`Display`]
/// form prints bit 0 leftmost, matching the qubit-ordering convention used
/// throughout SuperSim-RS.
///
/// ```
/// use qcir::Bits;
/// let mut b = Bits::zeros(4);
/// b.set(1, true);
/// b.set(3, true);
/// assert_eq!(b.to_string(), "0101");
/// assert_eq!(b.count_ones(), 2);
/// ```
///
/// [`Display`]: std::fmt::Display
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct Bits {
    len: usize,
    words: Vec<u64>,
}

impl Bits {
    /// Creates an all-zero bitstring of length `len`.
    pub fn zeros(len: usize) -> Self {
        Bits {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Creates a bitstring of length `len` from the low bits of `value`.
    ///
    /// Bit `i` of the result equals bit `i` of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `len > 64`.
    pub fn from_u64(value: u64, len: usize) -> Self {
        assert!(len <= 64, "from_u64 supports at most 64 bits");
        let mut b = Bits::zeros(len);
        if len > 0 {
            let mask = if len == 64 { u64::MAX } else { (1u64 << len) - 1 };
            b.words[0] = value & mask;
        }
        b
    }

    /// Creates a bitstring from a slice of booleans (`bools[i]` → bit `i`).
    pub fn from_bools(bools: &[bool]) -> Self {
        let mut b = Bits::zeros(bools.len());
        for (i, &v) in bools.iter().enumerate() {
            b.set(i, v);
        }
        b
    }

    /// Parses a string of `'0'`/`'1'` characters (leftmost character → bit 0).
    ///
    /// Returns `None` when any other character is present.
    pub fn parse(s: &str) -> Option<Self> {
        let mut b = Bits::zeros(s.len());
        for (i, c) in s.chars().enumerate() {
            match c {
                '0' => {}
                '1' => b.set(i, true),
                _ => return None,
            }
        }
        Some(b)
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the bitstring has zero length.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Value of bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let w = &mut self.words[i / 64];
        let m = 1u64 << (i % 64);
        if value {
            *w |= m;
        } else {
            *w &= !m;
        }
    }

    /// Flips bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn flip(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / 64] ^= 1u64 << (i % 64);
    }

    /// XORs another bitstring of the same length into `self`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn xor_assign(&mut self, other: &Bits) {
        assert_eq!(self.len, other.len, "length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Parity (mod-2 sum) of all bits.
    pub fn parity(&self) -> bool {
        self.count_ones() % 2 == 1
    }

    /// Parity of the AND with `other` — the GF(2) inner product.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn dot(&self, other: &Bits) -> bool {
        assert_eq!(self.len, other.len, "length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones())
            .sum::<u32>()
            % 2
            == 1
    }

    /// The bitstring as a `u64`, when it fits.
    pub fn to_u64(&self) -> Option<u64> {
        if self.len <= 64 {
            Some(self.words.first().copied().unwrap_or(0))
        } else {
            None
        }
    }

    /// Extracts the bits at `indices` (in order) into a new bitstring.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn extract(&self, indices: &[usize]) -> Bits {
        let mut out = Bits::zeros(indices.len());
        for (k, &i) in indices.iter().enumerate() {
            out.set(k, self.get(i));
        }
        out
    }

    /// Concatenates two bitstrings (`self` occupies the low bit positions).
    pub fn concat(&self, other: &Bits) -> Bits {
        let mut out = Bits::zeros(self.len + other.len);
        for i in 0..self.len {
            out.set(i, self.get(i));
        }
        for i in 0..other.len {
            out.set(self.len + i, other.get(i));
        }
        out
    }

    /// Iterator over the bits in index order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Scatter: writes `self`'s bits into positions `positions` of a
    /// zero-initialized bitstring of length `total_len`.
    ///
    /// # Panics
    ///
    /// Panics if `positions.len() != self.len()` or a position is out of range.
    pub fn scatter(&self, positions: &[usize], total_len: usize) -> Bits {
        assert_eq!(positions.len(), self.len, "positions/len mismatch");
        let mut out = Bits::zeros(total_len);
        for (k, &p) in positions.iter().enumerate() {
            out.set(p, self.get(k));
        }
        out
    }

    /// Writes `self`'s bits into positions `positions` of `target` in place.
    ///
    /// # Panics
    ///
    /// Panics if `positions.len() != self.len()` or a position is out of range.
    pub fn scatter_into(&self, positions: &[usize], target: &mut Bits) {
        assert_eq!(positions.len(), self.len, "positions/len mismatch");
        for (k, &p) in positions.iter().enumerate() {
            target.set(p, self.get(k));
        }
    }
}

impl fmt::Display for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

impl fmt::Debug for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bits(\"{self}\")")
    }
}

impl FromIterator<bool> for Bits {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let bools: Vec<bool> = iter.into_iter().collect();
        Bits::from_bools(&bools)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_flip() {
        let mut b = Bits::zeros(130);
        assert_eq!(b.count_ones(), 0);
        b.set(0, true);
        b.set(64, true);
        b.set(129, true);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(63) && !b.get(128));
        assert_eq!(b.count_ones(), 3);
        b.flip(64);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn display_roundtrip() {
        let b = Bits::parse("0110010").unwrap();
        assert_eq!(b.to_string(), "0110010");
        assert_eq!(b.len(), 7);
        assert!(Bits::parse("01x").is_none());
    }

    #[test]
    fn from_u64_bit_order() {
        let b = Bits::from_u64(0b1101, 4);
        // bit 0 of value -> bit 0 of string (leftmost)
        assert_eq!(b.to_string(), "1011");
        assert_eq!(b.to_u64(), Some(0b1101));
    }

    #[test]
    fn xor_and_dot() {
        let a = Bits::parse("1100").unwrap();
        let b = Bits::parse("1010").unwrap();
        let mut c = a.clone();
        c.xor_assign(&b);
        assert_eq!(c.to_string(), "0110");
        // dot = parity of AND = parity of "1000" = 1
        assert!(a.dot(&b));
        assert!(!a.dot(&a.clone()) ^ (a.count_ones() % 2 == 1));
    }

    #[test]
    fn extract_and_scatter() {
        let b = Bits::parse("10110").unwrap();
        let e = b.extract(&[4, 0, 2]);
        assert_eq!(e.to_string(), "011");
        let s = e.scatter(&[1, 3, 5], 7);
        assert_eq!(s.to_string(), "0001010");
    }

    #[test]
    fn concat_orders_low_then_high() {
        let a = Bits::parse("10").unwrap();
        let b = Bits::parse("011").unwrap();
        assert_eq!(a.concat(&b).to_string(), "10011");
    }

    #[test]
    fn hash_eq_in_map() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(Bits::parse("01").unwrap(), 1.0);
        *m.entry(Bits::parse("01").unwrap()).or_insert(0.0) += 1.0;
        assert_eq!(m.len(), 1);
        assert_eq!(m[&Bits::parse("01").unwrap()], 2.0);
    }

    #[test]
    fn empty_bits() {
        let b = Bits::zeros(0);
        assert!(b.is_empty());
        assert_eq!(b.to_string(), "");
        assert_eq!(b.to_u64(), Some(0));
        let c = b.concat(&Bits::parse("1").unwrap());
        assert_eq!(c.to_string(), "1");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        let b = Bits::zeros(3);
        let _ = b.get(3);
    }
}
