//! The unitary gate set and Pauli noise channels.

use qmath::{CMat, C64};
use std::f64::consts::{FRAC_1_SQRT_2, PI};

/// The canonical Clifford gates understood by the stabilizer simulator.
///
/// Parameterized gates whose angle lands on a Clifford point (for example
/// `Rz(π/2)`) normalize to one of these via [`Gate::to_clifford`]; the
/// normalization is exact up to global phase, which is unobservable in
/// measurement statistics.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum CliffordGate {
    /// Identity.
    I,
    /// Pauli X (bit flip).
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z (phase flip).
    Z,
    /// Hadamard.
    H,
    /// Phase gate `diag(1, i)`.
    S,
    /// Inverse phase gate `diag(1, -i)`.
    Sdg,
    /// Square root of X.
    SqrtX,
    /// Inverse square root of X.
    SqrtXdg,
    /// Square root of Y.
    SqrtY,
    /// Inverse square root of Y.
    SqrtYdg,
    /// Controlled-X (first qubit controls).
    Cx,
    /// Controlled-Y (first qubit controls).
    Cy,
    /// Controlled-Z (symmetric).
    Cz,
    /// Swap of two qubits.
    Swap,
}

impl CliffordGate {
    /// Number of qubits the gate acts on.
    pub fn arity(self) -> usize {
        match self {
            CliffordGate::Cx | CliffordGate::Cy | CliffordGate::Cz | CliffordGate::Swap => 2,
            _ => 1,
        }
    }

    /// The inverse gate (still Clifford).
    pub fn adjoint(self) -> CliffordGate {
        match self {
            CliffordGate::S => CliffordGate::Sdg,
            CliffordGate::Sdg => CliffordGate::S,
            CliffordGate::SqrtX => CliffordGate::SqrtXdg,
            CliffordGate::SqrtXdg => CliffordGate::SqrtX,
            CliffordGate::SqrtY => CliffordGate::SqrtYdg,
            CliffordGate::SqrtYdg => CliffordGate::SqrtY,
            g => g, // the rest are self-inverse
        }
    }

    /// All single-qubit Clifford generators (useful for random circuits).
    pub const ONE_QUBIT: [CliffordGate; 11] = [
        CliffordGate::I,
        CliffordGate::X,
        CliffordGate::Y,
        CliffordGate::Z,
        CliffordGate::H,
        CliffordGate::S,
        CliffordGate::Sdg,
        CliffordGate::SqrtX,
        CliffordGate::SqrtXdg,
        CliffordGate::SqrtY,
        CliffordGate::SqrtYdg,
    ];
}

impl From<CliffordGate> for Gate {
    fn from(g: CliffordGate) -> Gate {
        match g {
            CliffordGate::I => Gate::I,
            CliffordGate::X => Gate::X,
            CliffordGate::Y => Gate::Y,
            CliffordGate::Z => Gate::Z,
            CliffordGate::H => Gate::H,
            CliffordGate::S => Gate::S,
            CliffordGate::Sdg => Gate::Sdg,
            CliffordGate::SqrtX => Gate::SqrtX,
            CliffordGate::SqrtXdg => Gate::SqrtXdg,
            CliffordGate::SqrtY => Gate::SqrtY,
            CliffordGate::SqrtYdg => Gate::SqrtYdg,
            CliffordGate::Cx => Gate::Cx,
            CliffordGate::Cy => Gate::Cy,
            CliffordGate::Cz => Gate::Cz,
            CliffordGate::Swap => Gate::Swap,
        }
    }
}

/// A unitary gate.
///
/// The set contains the Clifford group generators plus the non-Clifford
/// rotations that make the gate set universal (`T`, arbitrary-angle `Rz`,
/// `Rx`, `Ry`, and `ZPow`). Clifford membership is decided *exactly*:
/// parameterized rotations are Clifford precisely when their angle is an
/// integer multiple of π/2 (or, for [`Gate::ZPow`], a half-integer exponent).
///
/// Two-qubit gates act on `(first, second)` qubit order with the first qubit
/// as the most significant bit of the 4-dimensional local basis, i.e.
/// `index = 2·bit_first + bit_second`.
#[derive(Copy, Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Gate {
    /// Identity.
    I,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
    /// Hadamard.
    H,
    /// `diag(1, i)`.
    S,
    /// `diag(1, -i)`.
    Sdg,
    /// Square root of X.
    SqrtX,
    /// Inverse square root of X.
    SqrtXdg,
    /// Square root of Y.
    SqrtY,
    /// Inverse square root of Y.
    SqrtYdg,
    /// `diag(1, e^{iπ/4})` — the canonical non-Clifford gate.
    T,
    /// `diag(1, e^{-iπ/4})`.
    Tdg,
    /// Z rotation `diag(e^{-iθ/2}, e^{iθ/2})`.
    Rz(f64),
    /// X rotation `cos(θ/2)·I − i·sin(θ/2)·X`.
    Rx(f64),
    /// Y rotation `cos(θ/2)·I − i·sin(θ/2)·Y`.
    Ry(f64),
    /// Power of Z: `diag(1, e^{iπa})`; `ZPow(0.25) == T` up to representation.
    ZPow(f64),
    /// Controlled-X (first qubit controls).
    Cx,
    /// Controlled-Y (first qubit controls).
    Cy,
    /// Controlled-Z.
    Cz,
    /// Swap.
    Swap,
}

/// Tolerance for deciding that a rotation angle lies on a Clifford point.
const ANGLE_EPS: f64 = 1e-9;

/// Returns `Some(k)` when `theta ≈ k·π/2` for integer `k`.
fn quarter_turns(theta: f64) -> Option<i64> {
    let k = theta / (PI / 2.0);
    let rounded = k.round();
    if (k - rounded).abs() < ANGLE_EPS {
        Some(rounded as i64)
    } else {
        None
    }
}

impl Gate {
    /// Number of qubits the gate acts on.
    pub fn arity(self) -> usize {
        match self {
            Gate::Cx | Gate::Cy | Gate::Cz | Gate::Swap => 2,
            _ => 1,
        }
    }

    /// Returns `true` when the gate is a Clifford operation (exactly, up to
    /// global phase).
    pub fn is_clifford(self) -> bool {
        self.to_clifford().is_some()
    }

    /// Normalizes the gate to a canonical [`CliffordGate`] when it is
    /// Clifford (up to global phase), or returns `None`.
    pub fn to_clifford(self) -> Option<CliffordGate> {
        use CliffordGate as C;
        Some(match self {
            Gate::I => C::I,
            Gate::X => C::X,
            Gate::Y => C::Y,
            Gate::Z => C::Z,
            Gate::H => C::H,
            Gate::S => C::S,
            Gate::Sdg => C::Sdg,
            Gate::SqrtX => C::SqrtX,
            Gate::SqrtXdg => C::SqrtXdg,
            Gate::SqrtY => C::SqrtY,
            Gate::SqrtYdg => C::SqrtYdg,
            Gate::Cx => C::Cx,
            Gate::Cy => C::Cy,
            Gate::Cz => C::Cz,
            Gate::Swap => C::Swap,
            Gate::T | Gate::Tdg => return None,
            Gate::Rz(theta) => match quarter_turns(theta)?.rem_euclid(4) {
                0 => C::I,
                1 => C::S,
                2 => C::Z,
                _ => C::Sdg,
            },
            Gate::Rx(theta) => match quarter_turns(theta)?.rem_euclid(4) {
                0 => C::I,
                1 => C::SqrtX,
                2 => C::X,
                _ => C::SqrtXdg,
            },
            Gate::Ry(theta) => match quarter_turns(theta)?.rem_euclid(4) {
                0 => C::I,
                1 => C::SqrtY,
                2 => C::Y,
                _ => C::SqrtYdg,
            },
            Gate::ZPow(a) => match quarter_turns(a * PI)?.rem_euclid(4) {
                0 => C::I,
                1 => C::S,
                2 => C::Z,
                _ => C::Sdg,
            },
        })
    }

    /// Returns `true` when the gate is diagonal in the computational basis.
    pub fn is_diagonal(self) -> bool {
        matches!(
            self,
            Gate::I
                | Gate::Z
                | Gate::S
                | Gate::Sdg
                | Gate::T
                | Gate::Tdg
                | Gate::Rz(_)
                | Gate::ZPow(_)
                | Gate::Cz
        )
    }

    /// The inverse gate.
    pub fn adjoint(self) -> Gate {
        match self {
            Gate::S => Gate::Sdg,
            Gate::Sdg => Gate::S,
            Gate::SqrtX => Gate::SqrtXdg,
            Gate::SqrtXdg => Gate::SqrtX,
            Gate::SqrtY => Gate::SqrtYdg,
            Gate::SqrtYdg => Gate::SqrtY,
            Gate::T => Gate::Tdg,
            Gate::Tdg => Gate::T,
            Gate::Rz(t) => Gate::Rz(-t),
            Gate::Rx(t) => Gate::Rx(-t),
            Gate::Ry(t) => Gate::Ry(-t),
            Gate::ZPow(a) => Gate::ZPow(-a),
            g => g, // self-inverse: I, X, Y, Z, H, Cx, Cy, Cz, Swap
        }
    }

    /// The gate's unitary matrix (2×2 for one-qubit gates, 4×4 for
    /// two-qubit gates, basis index `2·bit_first + bit_second`).
    pub fn unitary(self) -> CMat {
        let o = C64::ZERO;
        let l = C64::ONE;
        let i = C64::i();
        let h = FRAC_1_SQRT_2;
        match self {
            Gate::I => CMat::identity(2),
            Gate::X => CMat::from_rows(&[&[o, l], &[l, o]]),
            Gate::Y => CMat::from_rows(&[&[o, -i], &[i, o]]),
            Gate::Z => CMat::from_rows(&[&[l, o], &[o, -l]]),
            Gate::H => CMat::from_rows(&[&[l * h, l * h], &[l * h, -l * h]]),
            Gate::S => CMat::from_rows(&[&[l, o], &[o, i]]),
            Gate::Sdg => CMat::from_rows(&[&[l, o], &[o, -i]]),
            Gate::SqrtX => {
                let p = C64::new(0.5, 0.5);
                let m = C64::new(0.5, -0.5);
                CMat::from_rows(&[&[p, m], &[m, p]])
            }
            Gate::SqrtXdg => Gate::SqrtX.unitary().adjoint(),
            Gate::SqrtY => {
                let p = C64::new(0.5, 0.5);
                CMat::from_rows(&[&[p, -p], &[p, p]])
            }
            Gate::SqrtYdg => Gate::SqrtY.unitary().adjoint(),
            Gate::T => CMat::from_rows(&[&[l, o], &[o, C64::cis(PI / 4.0)]]),
            Gate::Tdg => CMat::from_rows(&[&[l, o], &[o, C64::cis(-PI / 4.0)]]),
            Gate::Rz(t) => CMat::from_rows(&[&[C64::cis(-t / 2.0), o], &[o, C64::cis(t / 2.0)]]),
            Gate::Rx(t) => {
                let c = C64::real((t / 2.0).cos());
                let s = C64::new(0.0, -(t / 2.0).sin());
                CMat::from_rows(&[&[c, s], &[s, c]])
            }
            Gate::Ry(t) => {
                let c = C64::real((t / 2.0).cos());
                let s = C64::real((t / 2.0).sin());
                CMat::from_rows(&[&[c, -s], &[s, c]])
            }
            Gate::ZPow(a) => CMat::from_rows(&[&[l, o], &[o, C64::cis(PI * a)]]),
            Gate::Cx => {
                CMat::from_rows(&[&[l, o, o, o], &[o, l, o, o], &[o, o, o, l], &[o, o, l, o]])
            }
            Gate::Cy => {
                CMat::from_rows(&[&[l, o, o, o], &[o, l, o, o], &[o, o, o, -i], &[o, o, i, o]])
            }
            Gate::Cz => {
                CMat::from_rows(&[&[l, o, o, o], &[o, l, o, o], &[o, o, l, o], &[o, o, o, -l]])
            }
            Gate::Swap => {
                CMat::from_rows(&[&[l, o, o, o], &[o, o, l, o], &[o, l, o, o], &[o, o, o, l]])
            }
        }
    }

    /// Short human-readable name.
    pub fn name(self) -> String {
        match self {
            Gate::I => "I".into(),
            Gate::X => "X".into(),
            Gate::Y => "Y".into(),
            Gate::Z => "Z".into(),
            Gate::H => "H".into(),
            Gate::S => "S".into(),
            Gate::Sdg => "S†".into(),
            Gate::SqrtX => "√X".into(),
            Gate::SqrtXdg => "√X†".into(),
            Gate::SqrtY => "√Y".into(),
            Gate::SqrtYdg => "√Y†".into(),
            Gate::T => "T".into(),
            Gate::Tdg => "T†".into(),
            Gate::Rz(t) => format!("Rz({t:.4})"),
            Gate::Rx(t) => format!("Rx({t:.4})"),
            Gate::Ry(t) => format!("Ry({t:.4})"),
            Gate::ZPow(a) => format!("Z^{a:.4}"),
            Gate::Cx => "CX".into(),
            Gate::Cy => "CY".into(),
            Gate::Cz => "CZ".into(),
            Gate::Swap => "SWAP".into(),
        }
    }
}

/// A stochastic Pauli noise channel.
///
/// These are the only noise processes a stabilizer simulator can represent
/// (the paper's §III-A); the Pauli-frame simulator applies them per shot.
#[derive(Copy, Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum NoiseChannel {
    /// Applies X with probability `p`.
    BitFlip(f64),
    /// Applies Z with probability `p`.
    PhaseFlip(f64),
    /// Applies Y with probability `p`.
    YFlip(f64),
    /// Applies a uniformly random non-identity Pauli with probability `p`.
    Depolarize1(f64),
    /// Applies a uniformly random non-identity two-qubit Pauli with
    /// probability `p`.
    Depolarize2(f64),
}

impl NoiseChannel {
    /// Number of qubits the channel acts on.
    pub fn arity(self) -> usize {
        match self {
            NoiseChannel::Depolarize2(_) => 2,
            _ => 1,
        }
    }

    /// The error probability parameter.
    pub fn probability(self) -> f64 {
        match self {
            NoiseChannel::BitFlip(p)
            | NoiseChannel::PhaseFlip(p)
            | NoiseChannel::YFlip(p)
            | NoiseChannel::Depolarize1(p)
            | NoiseChannel::Depolarize2(p) => p,
        }
    }

    /// Short human-readable name.
    pub fn name(self) -> String {
        match self {
            NoiseChannel::BitFlip(p) => format!("X_ERR({p})"),
            NoiseChannel::PhaseFlip(p) => format!("Z_ERR({p})"),
            NoiseChannel::YFlip(p) => format!("Y_ERR({p})"),
            NoiseChannel::Depolarize1(p) => format!("DEP1({p})"),
            NoiseChannel::Depolarize2(p) => format!("DEP2({p})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clifford_classification_of_fixed_gates() {
        assert!(Gate::H.is_clifford());
        assert!(Gate::S.is_clifford());
        assert!(Gate::Cx.is_clifford());
        assert!(!Gate::T.is_clifford());
        assert!(!Gate::Tdg.is_clifford());
    }

    #[test]
    fn rotation_clifford_points() {
        assert_eq!(Gate::Rz(PI / 2.0).to_clifford(), Some(CliffordGate::S));
        assert_eq!(Gate::Rz(PI).to_clifford(), Some(CliffordGate::Z));
        assert_eq!(Gate::Rz(-PI / 2.0).to_clifford(), Some(CliffordGate::Sdg));
        assert_eq!(Gate::Rz(2.0 * PI).to_clifford(), Some(CliffordGate::I));
        assert_eq!(Gate::Rz(PI / 4.0).to_clifford(), None);
        assert_eq!(Gate::Rx(PI / 2.0).to_clifford(), Some(CliffordGate::SqrtX));
        assert_eq!(
            Gate::Ry(-PI / 2.0).to_clifford(),
            Some(CliffordGate::SqrtYdg)
        );
        assert_eq!(Gate::ZPow(0.5).to_clifford(), Some(CliffordGate::S));
        assert_eq!(Gate::ZPow(1.0).to_clifford(), Some(CliffordGate::Z));
        assert_eq!(Gate::ZPow(0.25).to_clifford(), None);
    }

    #[test]
    fn unitaries_are_unitary() {
        let gates = [
            Gate::I,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::H,
            Gate::S,
            Gate::Sdg,
            Gate::SqrtX,
            Gate::SqrtXdg,
            Gate::SqrtY,
            Gate::SqrtYdg,
            Gate::T,
            Gate::Tdg,
            Gate::Rz(0.3),
            Gate::Rx(1.1),
            Gate::Ry(-0.7),
            Gate::ZPow(0.33),
            Gate::Cx,
            Gate::Cy,
            Gate::Cz,
            Gate::Swap,
        ];
        for g in gates {
            assert!(g.unitary().is_unitary(1e-12), "{} not unitary", g.name());
        }
    }

    #[test]
    fn adjoint_inverts() {
        let gates = [
            Gate::S,
            Gate::T,
            Gate::SqrtX,
            Gate::SqrtY,
            Gate::Rz(0.37),
            Gate::Rx(1.2),
            Gate::ZPow(0.8),
            Gate::Cx,
            Gate::H,
        ];
        for g in gates {
            let n = 1 << g.arity();
            let prod = g.unitary().mul(&g.adjoint().unitary());
            assert!(
                prod.approx_eq(&CMat::identity(n), 1e-12),
                "{} adjoint failed",
                g.name()
            );
        }
    }

    #[test]
    fn sqrt_gates_square_to_paulis() {
        let sx = Gate::SqrtX.unitary();
        let x = Gate::X.unitary();
        // (√X)² = X up to global phase — compare via |tr(A†B)| = 2.
        let overlap = sx.mul(&sx).adjoint().mul(&x).trace().abs();
        assert!((overlap - 2.0).abs() < 1e-12);
        let sy = Gate::SqrtY.unitary();
        let y = Gate::Y.unitary();
        let overlap = sy.mul(&sy).adjoint().mul(&y).trace().abs();
        assert!((overlap - 2.0).abs() < 1e-12);
    }

    #[test]
    fn t_matches_zpow_quarter() {
        assert!(Gate::T
            .unitary()
            .approx_eq(&Gate::ZPow(0.25).unitary(), 1e-12));
    }

    #[test]
    fn cx_truth_table() {
        let u = Gate::Cx.unitary();
        // |10> -> |11>
        assert_eq!(u[(3, 2)], C64::ONE);
        assert_eq!(u[(2, 2)], C64::ZERO);
        // |01> -> |01> (control is the first/most-significant bit)
        assert_eq!(u[(1, 1)], C64::ONE);
    }

    #[test]
    fn noise_channel_properties() {
        assert_eq!(NoiseChannel::Depolarize2(0.01).arity(), 2);
        assert_eq!(NoiseChannel::BitFlip(0.125).probability(), 0.125);
    }
}
