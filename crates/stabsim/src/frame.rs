//! Pauli-frame batch simulation for noisy stabilizer sampling.
//!
//! This is the architecture Stim uses for bulk noisy sampling: one clean
//! *reference* measurement record is produced by the tableau simulator, and
//! a batch of Pauli *frames* (X/Z flip masks, one bit per shot, packed 64
//! shots per word) is propagated through the circuit. Noise channels flip
//! frame bits stochastically; final measurement outcomes are the reference
//! XOR the X-frame.
//!
//! Frames are seeded with uniformly random Z masks: a random `Z^b` on
//! `|0…0⟩` leaves the initial state invariant, but as it propagates it
//! toggles non-deterministic measurement outcomes with exactly the right
//! linear correlations, so the sampled records follow the true joint
//! distribution of the noisy circuit.

use crate::{NonCliffordError, TableauSim};
use qcir::{Bits, Circuit, CliffordGate, NoiseChannel, OpKind, Qubit};
use rand::Rng;

/// A batch of Pauli frames propagated through a Clifford circuit.
///
/// ```
/// use stabsim::FrameSim;
/// use qcir::{Circuit, NoiseChannel};
/// use rand::SeedableRng;
///
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1);
/// c.add_noise(NoiseChannel::BitFlip(0.1), &[1]);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let shots = FrameSim::sample(&c, 256, &mut rng).unwrap();
/// assert_eq!(shots.len(), 256);
/// ```
#[derive(Clone, Debug)]
pub struct FrameSim {
    n: usize,
    shots: usize,
    words: usize,
    /// X-flip masks per qubit, one bit per shot.
    xs: Vec<Vec<u64>>,
    /// Z-flip masks per qubit, one bit per shot.
    zs: Vec<Vec<u64>>,
}

/// Generates a word mask whose bits are 1 with probability `p`.
fn random_mask(words: usize, bits: usize, p: f64, rng: &mut impl Rng) -> Vec<u64> {
    let mut out = vec![0u64; words];
    if p <= 0.0 {
        return out;
    }
    for b in 0..bits {
        if rng.random::<f64>() < p {
            out[b / 64] |= 1 << (b % 64);
        }
    }
    out
}

impl FrameSim {
    /// Creates a batch of `shots` frames on `n` qubits with random initial Z
    /// masks (see module docs for why).
    pub fn new(n: usize, shots: usize, rng: &mut impl Rng) -> Self {
        let words = shots.div_ceil(64).max(1);
        let tail_mask = if shots % 64 == 0 {
            u64::MAX
        } else {
            (1u64 << (shots % 64)) - 1
        };
        let mut zs = Vec::with_capacity(n);
        for _ in 0..n {
            let mut col: Vec<u64> = (0..words).map(|_| rng.random()).collect();
            if let Some(last) = col.last_mut() {
                *last &= tail_mask;
            }
            zs.push(col);
        }
        FrameSim {
            n,
            shots,
            words,
            xs: vec![vec![0u64; words]; n],
            zs,
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Number of shots in the batch.
    pub fn shots(&self) -> usize {
        self.shots
    }

    /// Propagates the frames through a Clifford gate.
    ///
    /// Signs are irrelevant for frames (a frame is an actual Pauli error;
    /// its global phase is unobservable), so the update rules are the
    /// sign-free symplectic ones.
    ///
    /// # Panics
    ///
    /// Panics on gate arity mismatch or out-of-range qubits.
    pub fn apply(&mut self, gate: CliffordGate, qubits: &[Qubit]) {
        assert_eq!(qubits.len(), gate.arity(), "arity mismatch");
        use CliffordGate as G;
        let w = self.words;
        match gate {
            G::I | G::X | G::Y | G::Z => {}
            G::H | G::SqrtY | G::SqrtYdg => {
                let q = qubits[0].index();
                std::mem::swap(&mut self.xs[q], &mut self.zs[q]);
            }
            G::S | G::Sdg => {
                let q = qubits[0].index();
                for k in 0..w {
                    self.zs[q][k] ^= self.xs[q][k];
                }
            }
            G::SqrtX | G::SqrtXdg => {
                let q = qubits[0].index();
                for k in 0..w {
                    self.xs[q][k] ^= self.zs[q][k];
                }
            }
            G::Cx => {
                let (c, t) = (qubits[0].index(), qubits[1].index());
                for k in 0..w {
                    let xc = self.xs[c][k];
                    let zt = self.zs[t][k];
                    self.xs[t][k] ^= xc;
                    self.zs[c][k] ^= zt;
                }
            }
            G::Cz => {
                let (a, b) = (qubits[0].index(), qubits[1].index());
                for k in 0..w {
                    let xa = self.xs[a][k];
                    let xb = self.xs[b][k];
                    self.zs[a][k] ^= xb;
                    self.zs[b][k] ^= xa;
                }
            }
            G::Cy => {
                self.apply(G::Sdg, &[qubits[1]]);
                self.apply(G::Cx, qubits);
                self.apply(G::S, &[qubits[1]]);
            }
            G::Swap => {
                let (a, b) = (qubits[0].index(), qubits[1].index());
                self.xs.swap(a, b);
                self.zs.swap(a, b);
            }
        }
    }

    /// Applies a noise channel, flipping frame bits stochastically per shot.
    ///
    /// # Panics
    ///
    /// Panics on channel arity mismatch.
    pub fn apply_noise(&mut self, channel: NoiseChannel, qubits: &[Qubit], rng: &mut impl Rng) {
        assert_eq!(qubits.len(), channel.arity(), "arity mismatch");
        match channel {
            NoiseChannel::BitFlip(p) => {
                let q = qubits[0].index();
                let m = random_mask(self.words, self.shots, p, rng);
                for k in 0..self.words {
                    self.xs[q][k] ^= m[k];
                }
            }
            NoiseChannel::PhaseFlip(p) => {
                let q = qubits[0].index();
                let m = random_mask(self.words, self.shots, p, rng);
                for k in 0..self.words {
                    self.zs[q][k] ^= m[k];
                }
            }
            NoiseChannel::YFlip(p) => {
                let q = qubits[0].index();
                let m = random_mask(self.words, self.shots, p, rng);
                for k in 0..self.words {
                    self.xs[q][k] ^= m[k];
                    self.zs[q][k] ^= m[k];
                }
            }
            NoiseChannel::Depolarize1(p) => {
                let q = qubits[0].index();
                for shot in 0..self.shots {
                    if rng.random::<f64>() < p {
                        let which = rng.random_range(1..4u8);
                        let m = 1u64 << (shot % 64);
                        if which & 1 != 0 {
                            self.xs[q][shot / 64] ^= m;
                        }
                        if which & 2 != 0 {
                            self.zs[q][shot / 64] ^= m;
                        }
                    }
                }
            }
            NoiseChannel::Depolarize2(p) => {
                let (a, b) = (qubits[0].index(), qubits[1].index());
                for shot in 0..self.shots {
                    if rng.random::<f64>() < p {
                        let which = rng.random_range(1..16u8);
                        let m = 1u64 << (shot % 64);
                        let w = shot / 64;
                        if which & 1 != 0 {
                            self.xs[a][w] ^= m;
                        }
                        if which & 2 != 0 {
                            self.zs[a][w] ^= m;
                        }
                        if which & 4 != 0 {
                            self.xs[b][w] ^= m;
                        }
                        if which & 8 != 0 {
                            self.zs[b][w] ^= m;
                        }
                    }
                }
            }
        }
    }

    /// The X-frame bit of qubit `q` in shot `shot` (whether the measured
    /// value deviates from the reference).
    pub fn x_flip(&self, q: usize, shot: usize) -> bool {
        (self.xs[q][shot / 64] >> (shot % 64)) & 1 == 1
    }

    /// Converts the batch into measurement records given a clean reference
    /// sample.
    ///
    /// # Panics
    ///
    /// Panics if `reference.len() != num_qubits`.
    pub fn measure_all(&self, reference: &Bits) -> Vec<Bits> {
        assert_eq!(reference.len(), self.n, "reference width mismatch");
        (0..self.shots)
            .map(|s| {
                let mut b = reference.clone();
                for q in 0..self.n {
                    if self.x_flip(q, s) {
                        b.flip(q);
                    }
                }
                b
            })
            .collect()
    }

    /// End-to-end noisy sampling of a (possibly noisy) Clifford circuit:
    /// clean tableau reference + frame propagation.
    ///
    /// # Errors
    ///
    /// Returns [`NonCliffordError`] if the circuit contains a non-Clifford
    /// gate.
    pub fn sample(
        circuit: &Circuit,
        shots: usize,
        rng: &mut impl Rng,
    ) -> Result<Vec<Bits>, NonCliffordError> {
        let clean = circuit.without_noise();
        let tab = TableauSim::run(&clean, rng)?;
        let reference = tab.support().sample(rng);

        let mut frames = FrameSim::new(circuit.num_qubits(), shots, rng);
        for (i, op) in circuit.ops().iter().enumerate() {
            match &op.kind {
                OpKind::Gate(g) => {
                    let c = g.to_clifford().ok_or_else(|| NonCliffordError {
                        op_index: i,
                        name: g.name(),
                    })?;
                    frames.apply(c, &op.qubits);
                }
                OpKind::Noise(ch) => frames.apply_noise(*ch, &op.qubits, rng),
            }
        }
        Ok(frames.measure_all(&reference))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn noiseless_bell_correlations_hold_per_shot() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let mut r = rng();
        let shots = FrameSim::sample(&c, 512, &mut r).unwrap();
        let mut zeros = 0;
        for s in &shots {
            assert_eq!(s.get(0), s.get(1), "Bell correlation violated");
            if !s.get(0) {
                zeros += 1;
            }
        }
        // Both branches should appear with roughly equal frequency.
        assert!(
            zeros > 150 && zeros < 362,
            "unbalanced Bell sampling: {zeros}"
        );
    }

    #[test]
    fn random_z_seed_spreads_nondeterministic_outcomes() {
        // |+> measured: without the random-Z trick every shot would equal
        // the reference; with it, both outcomes appear.
        let mut c = Circuit::new(1);
        c.h(0);
        let mut r = rng();
        let shots = FrameSim::sample(&c, 512, &mut r).unwrap();
        let ones: usize = shots.iter().filter(|s| s.get(0)).count();
        assert!(ones > 150 && ones < 362, "skewed |+> sampling: {ones}");
    }

    #[test]
    fn certain_bitflip_flips_every_shot() {
        let mut c = Circuit::new(1);
        c.add_noise(NoiseChannel::BitFlip(1.0), &[0]);
        let mut r = rng();
        let shots = FrameSim::sample(&c, 64, &mut r).unwrap();
        assert!(shots.iter().all(|s| s.get(0)));
    }

    #[test]
    fn phase_flip_invisible_on_z_basis_state() {
        let mut c = Circuit::new(1);
        c.add_noise(NoiseChannel::PhaseFlip(1.0), &[0]);
        let mut r = rng();
        let shots = FrameSim::sample(&c, 64, &mut r).unwrap();
        assert!(shots.iter().all(|s| !s.get(0)));
    }

    #[test]
    fn phase_flip_between_hadamards_becomes_bit_flip() {
        let mut c = Circuit::new(1);
        c.h(0);
        c.add_noise(NoiseChannel::PhaseFlip(1.0), &[0]);
        c.h(0);
        let mut r = rng();
        let shots = FrameSim::sample(&c, 64, &mut r).unwrap();
        assert!(shots.iter().all(|s| s.get(0)));
    }

    #[test]
    fn depolarizing_rate_scales_observed_errors() {
        let p = 0.25;
        let mut c = Circuit::new(1);
        c.add_noise(NoiseChannel::BitFlip(p), &[0]);
        let mut r = rng();
        let n = 4096;
        let shots = FrameSim::sample(&c, n, &mut r).unwrap();
        let ones: usize = shots.iter().filter(|s| s.get(0)).count();
        let freq = ones as f64 / n as f64;
        assert!((freq - p).abs() < 0.03, "bit-flip rate off: {freq}");
    }

    #[test]
    fn error_propagates_through_cx() {
        // X error on control before CX infects the target.
        let mut c = Circuit::new(2);
        c.add_noise(NoiseChannel::BitFlip(1.0), &[0]);
        c.cx(0, 1);
        let mut r = rng();
        let shots = FrameSim::sample(&c, 32, &mut r).unwrap();
        assert!(shots.iter().all(|s| s.get(0) && s.get(1)));
    }

    #[test]
    fn depolarize2_hits_roughly_p() {
        let p = 0.3;
        let mut c = Circuit::new(2);
        c.add_noise(NoiseChannel::Depolarize2(p), &[0, 1]);
        let mut r = rng();
        let n = 4096;
        let shots = FrameSim::sample(&c, n, &mut r).unwrap();
        // Only X-components are visible on |00>; 8 of 15 two-qubit Paulis
        // have an X or Y on a given qubit... count any visible flip:
        // 12 of 15 non-identity Paulis flip at least one bit.
        let flipped: usize = shots.iter().filter(|s| s.get(0) || s.get(1)).count();
        let freq = flipped as f64 / n as f64;
        let expected = p * 12.0 / 15.0;
        assert!(
            (freq - expected).abs() < 0.04,
            "dep2 rate off: {freq} vs {expected}"
        );
    }

    #[test]
    fn rejects_non_clifford() {
        let mut c = Circuit::new(1);
        c.t(0);
        let mut r = rng();
        assert!(FrameSim::sample(&c, 8, &mut r).is_err());
    }
}
