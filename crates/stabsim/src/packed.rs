//! Bit-packed Pauli rows used by Gaussian elimination and sampling.

use qcir::{Bits, Pauli, PauliString};

/// A Pauli operator in packed `i^k · X^x · Z^z` form.
///
/// `k` is the exponent of the global `i` phase (mod 4). In this
/// representation `Y = i·X·Z` on a qubit contributes one `X` bit, one `Z`
/// bit, and `+1` to `k`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PackedPauli {
    /// X-component mask over qubits.
    pub x: Bits,
    /// Z-component mask over qubits.
    pub z: Bits,
    /// Exponent of the global `i` phase (mod 4).
    pub k: u8,
}

impl PackedPauli {
    /// The identity on `n` qubits.
    pub fn identity(n: usize) -> Self {
        PackedPauli {
            x: Bits::zeros(n),
            z: Bits::zeros(n),
            k: 0,
        }
    }

    /// Number of qubits.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Returns `true` for the zero-qubit operator.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Converts from a phase-tracked [`PauliString`].
    pub fn from_string(p: &PauliString) -> Self {
        let n = p.len();
        let mut x = Bits::zeros(n);
        let mut z = Bits::zeros(n);
        let mut extra = 0u8;
        for q in 0..n {
            let (xb, zb) = p.pauli(q).xz();
            x.set(q, xb);
            z.set(q, zb);
            if xb && zb {
                extra += 1;
            }
        }
        PackedPauli {
            x,
            z,
            k: (p.phase() + extra) % 4,
        }
    }

    /// Converts back to a [`PauliString`].
    pub fn to_string_form(&self) -> PauliString {
        let n = self.len();
        let mut s = PauliString::identity(n);
        for q in 0..n {
            s.set_pauli(q, Pauli::from_xz(self.x.get(q), self.z.get(q)));
        }
        // i^k X^x Z^z = i^{k - #Y} · Π P_q  (each Y = i·XZ); the Y count
        // is the popcount of x & z, word-level.
        let y_count = (self.x.and_count_ones(&self.z) % 4) as u8;
        s.set_phase((self.k + 4 - y_count) % 4);
        s
    }

    /// In-place product `self := self · other`.
    ///
    /// Uses `(X^{x1}Z^{z1})(X^{x2}Z^{z2}) = (-1)^{z1·x2} X^{x1⊕x2} Z^{z1⊕z2}`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn mul_assign(&mut self, other: &PackedPauli) {
        let cross = self.z.dot(&other.x);
        self.x.xor_assign(&other.x);
        self.z.xor_assign(&other.z);
        self.k = (self.k + other.k + if cross { 2 } else { 0 }) % 4;
    }

    /// Returns `true` when the two Paulis commute.
    pub fn commutes_with(&self, other: &PackedPauli) -> bool {
        !(self.x.dot(&other.z) ^ self.z.dot(&other.x))
    }

    /// Returns `true` when the X-component is zero (a pure Z-type operator).
    ///
    /// Short-circuits at the first nonzero word ([`Bits::is_zero`]) instead
    /// of popcounting the whole mask.
    pub fn is_z_type(&self) -> bool {
        self.x.is_zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_with_string() {
        for s in ["XYZI", "IIII", "YYYY", "ZXZX"] {
            let p = PauliString::parse(s).unwrap();
            let packed = PackedPauli::from_string(&p);
            assert_eq!(packed.to_string_form(), p, "roundtrip of {s}");
        }
    }

    #[test]
    fn multiplication_matches_pauli_string() {
        let cases = [("XI", "ZI"), ("XY", "YZ"), ("YY", "XZ"), ("ZZ", "XX")];
        for (a, b) in cases {
            let pa = PauliString::parse(a).unwrap();
            let pb = PauliString::parse(b).unwrap();
            let mut packed = PackedPauli::from_string(&pa);
            packed.mul_assign(&PackedPauli::from_string(&pb));
            assert_eq!(
                packed.to_string_form(),
                pa.mul(&pb),
                "product {a}·{b} mismatch"
            );
        }
    }

    #[test]
    fn commutation_matches_pauli_string() {
        let cases = [("XI", "ZI"), ("XX", "ZZ"), ("XY", "YZ"), ("IZ", "ZI")];
        for (a, b) in cases {
            let pa = PauliString::parse(a).unwrap();
            let pb = PauliString::parse(b).unwrap();
            assert_eq!(
                PackedPauli::from_string(&pa).commutes_with(&PackedPauli::from_string(&pb)),
                pa.commutes_with(&pb),
                "commutation {a} vs {b}"
            );
        }
    }

    #[test]
    fn z_type_detection() {
        let p = PackedPauli::from_string(&PauliString::parse("IZZI").unwrap());
        assert!(p.is_z_type());
        let q = PackedPauli::from_string(&PauliString::parse("IYZI").unwrap());
        assert!(!q.is_z_type());
    }
}
