//! The frozen bit-at-a-time tableau baseline.
//!
//! This is the pre-word-parallel `TableauSim` — column-major bit-packed
//! storage (`xs[q]` holds qubit `q`'s column over all `2n+1` rows) with
//! `rowsum`/`copy_row`/`measure` probing one bit at a time and the
//! per-qubit `g()` phase match. It is kept verbatim (same pattern as
//! `cutkit::reference_evaluate_btreemap`) so property tests and the
//! `tableau` bench series can assert the packed row-major engine
//! bit-identical to it — same outcomes, same seeded-RNG consumption —
//! and measure the speedup. Do not optimize this module; its value is
//! being frozen.

use crate::packed::PackedPauli;
use crate::tableau::AffineSupport;
use crate::NonCliffordError;
use qcir::{Bits, Circuit, CliffordGate, NoiseChannel, OpKind, Qubit};
use rand::Rng;

/// Splits two distinct columns out of a column store for simultaneous
/// mutation.
fn pair_mut(cols: &mut [Vec<u64>], a: usize, b: usize) -> (&mut Vec<u64>, &mut Vec<u64>) {
    assert_ne!(a, b, "need distinct columns");
    if a < b {
        let (lo, hi) = cols.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = cols.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}

#[inline]
fn get_bit(v: &[u64], r: usize) -> bool {
    (v[r / 64] >> (r % 64)) & 1 == 1
}

#[inline]
fn set_bit(v: &mut [u64], r: usize, b: bool) {
    let m = 1u64 << (r % 64);
    if b {
        v[r / 64] |= m;
    } else {
        v[r / 64] &= !m;
    }
}

/// The frozen column-major, bit-at-a-time stabilizer tableau.
///
/// API-compatible with [`TableauSim`](crate::TableauSim) (minus the
/// scratch-reusing extras) and guaranteed to consume the RNG identically,
/// so the two engines can be driven side by side from one seed.
#[derive(Clone, Debug)]
pub struct ReferenceTableauSim {
    n: usize,
    /// Words per column; rows are `0..n` destabilizers, `n..2n` stabilizers,
    /// row `2n` scratch.
    words: usize,
    xs: Vec<Vec<u64>>,
    zs: Vec<Vec<u64>>,
    signs: Vec<u64>,
}

impl ReferenceTableauSim {
    /// Creates the all-`|0⟩` state on `n` qubits.
    pub fn new(n: usize) -> Self {
        let rows = 2 * n + 1;
        let words = rows.div_ceil(64).max(1);
        let mut sim = ReferenceTableauSim {
            n,
            words,
            xs: vec![vec![0u64; words]; n],
            zs: vec![vec![0u64; words]; n],
            signs: vec![0u64; words],
        };
        for q in 0..n {
            set_bit(&mut sim.xs[q], q, true); // destabilizer q = X_q
            set_bit(&mut sim.zs[q], n + q, true); // stabilizer q = Z_q
        }
        sim
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Runs a circuit from `|0…0⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`NonCliffordError`] if the circuit contains a non-Clifford
    /// gate.
    pub fn run(circuit: &Circuit, rng: &mut impl Rng) -> Result<Self, NonCliffordError> {
        let mut sim = ReferenceTableauSim::new(circuit.num_qubits());
        sim.run_ops(circuit, rng)?;
        Ok(sim)
    }

    /// Applies every operation of `circuit` to the current state.
    ///
    /// # Errors
    ///
    /// Returns [`NonCliffordError`] if the circuit contains a non-Clifford
    /// gate.
    pub fn run_ops(
        &mut self,
        circuit: &Circuit,
        rng: &mut impl Rng,
    ) -> Result<(), NonCliffordError> {
        for (i, op) in circuit.ops().iter().enumerate() {
            match &op.kind {
                OpKind::Gate(g) => {
                    let c = g.to_clifford().ok_or_else(|| NonCliffordError {
                        op_index: i,
                        name: g.name(),
                    })?;
                    self.apply(c, &op.qubits);
                }
                OpKind::Noise(ch) => self.apply_noise(*ch, &op.qubits, rng),
            }
        }
        Ok(())
    }

    /// Applies a Clifford gate.
    ///
    /// # Panics
    ///
    /// Panics if the qubit count does not match the gate arity or a qubit is
    /// out of range.
    pub fn apply(&mut self, gate: CliffordGate, qubits: &[Qubit]) {
        assert_eq!(qubits.len(), gate.arity(), "arity mismatch");
        use CliffordGate as G;
        let w = self.words;
        match gate {
            G::I => {}
            G::X => {
                let q = qubits[0].index();
                for k in 0..w {
                    self.signs[k] ^= self.zs[q][k];
                }
            }
            G::Y => {
                let q = qubits[0].index();
                for k in 0..w {
                    self.signs[k] ^= self.xs[q][k] ^ self.zs[q][k];
                }
            }
            G::Z => {
                let q = qubits[0].index();
                for k in 0..w {
                    self.signs[k] ^= self.xs[q][k];
                }
            }
            G::H => {
                let q = qubits[0].index();
                for k in 0..w {
                    self.signs[k] ^= self.xs[q][k] & self.zs[q][k];
                }
                let (x, z) = (&mut self.xs[q], &mut self.zs[q]);
                std::mem::swap(x, z);
            }
            G::S => {
                let q = qubits[0].index();
                for k in 0..w {
                    self.signs[k] ^= self.xs[q][k] & self.zs[q][k];
                    self.zs[q][k] ^= self.xs[q][k];
                }
            }
            G::Sdg => {
                let q = qubits[0].index();
                for k in 0..w {
                    self.signs[k] ^= self.xs[q][k] & !self.zs[q][k];
                    self.zs[q][k] ^= self.xs[q][k];
                }
            }
            G::SqrtX => {
                let q = qubits[0].index();
                for k in 0..w {
                    self.signs[k] ^= self.zs[q][k] & !self.xs[q][k];
                    self.xs[q][k] ^= self.zs[q][k];
                }
            }
            G::SqrtXdg => {
                let q = qubits[0].index();
                for k in 0..w {
                    self.signs[k] ^= self.zs[q][k] & self.xs[q][k];
                    self.xs[q][k] ^= self.zs[q][k];
                }
            }
            G::SqrtY => {
                let q = qubits[0].index();
                for k in 0..w {
                    self.signs[k] ^= self.xs[q][k] & !self.zs[q][k];
                }
                std::mem::swap(&mut self.xs[q], &mut self.zs[q]);
            }
            G::SqrtYdg => {
                let q = qubits[0].index();
                for k in 0..w {
                    self.signs[k] ^= self.zs[q][k] & !self.xs[q][k];
                }
                std::mem::swap(&mut self.xs[q], &mut self.zs[q]);
            }
            G::Cx => {
                let (c, t) = (qubits[0].index(), qubits[1].index());
                for k in 0..w {
                    self.signs[k] ^=
                        self.xs[c][k] & self.zs[t][k] & !(self.xs[t][k] ^ self.zs[c][k]);
                }
                {
                    let (xc, xt) = pair_mut(&mut self.xs, c, t);
                    for k in 0..w {
                        xt[k] ^= xc[k];
                    }
                }
                let (zc, zt) = pair_mut(&mut self.zs, c, t);
                for k in 0..w {
                    zc[k] ^= zt[k];
                }
            }
            G::Cz => {
                let (a, b) = (qubits[0].index(), qubits[1].index());
                for k in 0..w {
                    self.signs[k] ^=
                        self.xs[a][k] & self.xs[b][k] & (self.zs[a][k] ^ self.zs[b][k]);
                }
                for k in 0..w {
                    let xa = self.xs[a][k];
                    let xb = self.xs[b][k];
                    self.zs[a][k] ^= xb;
                    self.zs[b][k] ^= xa;
                }
            }
            G::Cy => {
                self.apply(G::Sdg, &[qubits[1]]);
                self.apply(G::Cx, qubits);
                self.apply(G::S, &[qubits[1]]);
            }
            G::Swap => {
                let (a, b) = (qubits[0].index(), qubits[1].index());
                self.xs.swap(a, b);
                self.zs.swap(a, b);
            }
        }
    }

    /// Applies a Pauli noise channel as one random trajectory.
    pub fn apply_noise(&mut self, channel: NoiseChannel, qubits: &[Qubit], rng: &mut impl Rng) {
        use CliffordGate as G;
        match channel {
            NoiseChannel::BitFlip(p) => {
                if rng.random::<f64>() < p {
                    self.apply(G::X, qubits);
                }
            }
            NoiseChannel::PhaseFlip(p) => {
                if rng.random::<f64>() < p {
                    self.apply(G::Z, qubits);
                }
            }
            NoiseChannel::YFlip(p) => {
                if rng.random::<f64>() < p {
                    self.apply(G::Y, qubits);
                }
            }
            NoiseChannel::Depolarize1(p) => {
                if rng.random::<f64>() < p {
                    let g = [G::X, G::Y, G::Z][rng.random_range(0..3)];
                    self.apply(g, qubits);
                }
            }
            NoiseChannel::Depolarize2(p) => {
                if rng.random::<f64>() < p {
                    let k = rng.random_range(1..16u8);
                    for (bit_pos, q) in [(0u8, qubits[0]), (2u8, qubits[1])] {
                        match (k >> bit_pos) & 0b11 {
                            0b01 => self.apply(G::X, &[q]),
                            0b10 => self.apply(G::Z, &[q]),
                            0b11 => self.apply(G::Y, &[q]),
                            _ => {}
                        }
                    }
                }
            }
        }
    }

    #[inline]
    fn x_bit(&self, q: usize, row: usize) -> bool {
        get_bit(&self.xs[q], row)
    }

    #[inline]
    fn z_bit(&self, q: usize, row: usize) -> bool {
        get_bit(&self.zs[q], row)
    }

    #[inline]
    fn sign_bit(&self, row: usize) -> bool {
        get_bit(&self.signs, row)
    }

    /// The Aaronson–Gottesman phase function `g` (exponent of `i`
    /// contributed when multiplying single-qubit Paulis `(x1,z1)·(x2,z2)`).
    #[inline]
    fn g(x1: bool, z1: bool, x2: bool, z2: bool) -> i32 {
        match (x1, z1) {
            (false, false) => 0,
            (true, true) => z2 as i32 - x2 as i32,
            (true, false) => z2 as i32 * (2 * x2 as i32 - 1),
            (false, true) => x2 as i32 * (1 - 2 * z2 as i32),
        }
    }

    /// Row operation: `row_h := row_i · row_h` with exact phase tracking,
    /// one qubit at a time — the loop the packed engine replaces.
    fn rowsum(&mut self, h: usize, i: usize) {
        let mut ph: i32 = 2 * (self.sign_bit(h) as i32) + 2 * (self.sign_bit(i) as i32);
        for q in 0..self.n {
            let (x1, z1) = (self.x_bit(q, i), self.z_bit(q, i));
            let (x2, z2) = (self.x_bit(q, h), self.z_bit(q, h));
            ph += Self::g(x1, z1, x2, z2);
            set_bit(&mut self.xs[q], h, x1 ^ x2);
            set_bit(&mut self.zs[q], h, z1 ^ z2);
        }
        let ph = ph.rem_euclid(4);
        debug_assert!(ph == 0 || ph == 2, "rowsum produced imaginary phase");
        set_bit(&mut self.signs, h, ph == 2);
    }

    fn copy_row(&mut self, src: usize, dst: usize) {
        for q in 0..self.n {
            let x = self.x_bit(q, src);
            let z = self.z_bit(q, src);
            set_bit(&mut self.xs[q], dst, x);
            set_bit(&mut self.zs[q], dst, z);
        }
        let s = self.sign_bit(src);
        set_bit(&mut self.signs, dst, s);
    }

    fn clear_row(&mut self, row: usize) {
        for q in 0..self.n {
            set_bit(&mut self.xs[q], row, false);
            set_bit(&mut self.zs[q], row, false);
        }
        set_bit(&mut self.signs, row, false);
    }

    /// Measures qubit `q` in the computational basis, collapsing the state.
    ///
    /// Returns the outcome bit. Random outcomes draw from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn measure(&mut self, q: usize, rng: &mut impl Rng) -> bool {
        assert!(q < self.n, "qubit out of range");
        let n = self.n;
        if let Some(p) = (n..2 * n).find(|&r| self.x_bit(q, r)) {
            // Random outcome. Row p's own destabilizer partner (row p−n)
            // anticommutes with row p, so multiplying it would produce an
            // imaginary phase — but it is overwritten below anyway, so it
            // is skipped here.
            for r in 0..2 * n {
                if r != p && r != p - n && self.x_bit(q, r) {
                    self.rowsum(r, p);
                }
            }
            self.copy_row(p, p - n);
            self.clear_row(p);
            let outcome: bool = rng.random();
            set_bit(&mut self.zs[q], p, true);
            set_bit(&mut self.signs, p, outcome);
            outcome
        } else {
            // Deterministic outcome.
            let scratch = 2 * n;
            self.clear_row(scratch);
            for i in 0..n {
                if self.x_bit(q, i) {
                    self.rowsum(scratch, n + i);
                }
            }
            self.sign_bit(scratch)
        }
    }

    /// Extracts row `row` of the tableau as a packed Pauli, one bit at a
    /// time.
    fn row_pauli(&self, row: usize) -> PackedPauli {
        let mut x = Bits::zeros(self.n);
        let mut z = Bits::zeros(self.n);
        let mut ys = 0u8;
        for q in 0..self.n {
            let xb = self.x_bit(q, row);
            let zb = self.z_bit(q, row);
            x.set(q, xb);
            z.set(q, zb);
            if xb && zb {
                ys = (ys + 1) % 4;
            }
        }
        PackedPauli {
            x,
            z,
            k: (2 * self.sign_bit(row) as u8 + ys) % 4,
        }
    }

    /// The current stabilizer generators as phase-tracked Pauli strings.
    pub fn stabilizers(&self) -> Vec<qcir::PauliString> {
        (self.n..2 * self.n)
            .map(|r| self.row_pauli(r).to_string_form())
            .collect()
    }

    /// The current destabilizer generators.
    pub fn destabilizers(&self) -> Vec<qcir::PauliString> {
        (0..self.n)
            .map(|r| self.row_pauli(r).to_string_form())
            .collect()
    }

    /// Exact expectation value `⟨ψ|P|ψ⟩ ∈ {-1, 0, +1}` of a Pauli string,
    /// with a fresh `row_pauli` extraction per commute check — the
    /// allocation pattern the packed engine's scratch path replaces.
    ///
    /// # Panics
    ///
    /// Panics if `p.len() != num_qubits` or the string carries an imaginary
    /// phase (non-Hermitian operator).
    pub fn expectation(&self, p: &qcir::PauliString) -> i32 {
        assert_eq!(p.len(), self.n, "operator width mismatch");
        assert!(p.phase() % 2 == 0, "non-Hermitian Pauli operator");
        let target = PackedPauli::from_string(p);
        // ⟨P⟩ = 0 unless P commutes with every stabilizer generator.
        for r in self.n..2 * self.n {
            if !self.row_pauli(r).commutes_with(&target) {
                return 0;
            }
        }
        // P = ± Π of the stabilizers paired with anticommuting destabilizers.
        let mut product = PackedPauli::identity(self.n);
        for i in 0..self.n {
            if !self.row_pauli(i).commutes_with(&target) {
                product.mul_assign(&self.row_pauli(self.n + i));
            }
        }
        debug_assert_eq!(product.x, target.x, "membership reconstruction failed");
        debug_assert_eq!(product.z, target.z, "membership reconstruction failed");
        let k_diff = (4 + product.k - target.k) % 4;
        debug_assert!(k_diff % 2 == 0);
        if k_diff == 0 {
            1
        } else {
            -1
        }
    }

    /// The affine-subspace support of the computational-basis measurement
    /// distribution (same extraction as the packed engine, fed by the
    /// bit-at-a-time `row_pauli`).
    pub fn support(&self) -> AffineSupport {
        let n = self.n;
        let mut rows: Vec<PackedPauli> = (n..2 * n).map(|r| self.row_pauli(r)).collect();

        // Echelon form on the X-block.
        let mut rank = 0;
        for col in 0..n {
            if let Some(pivot) = (rank..n).find(|&i| rows[i].x.get(col)) {
                rows.swap(rank, pivot);
                let pivot_row = rows[rank].clone();
                for (i, row) in rows.iter_mut().enumerate() {
                    if i != rank && row.x.get(col) {
                        row.mul_assign(&pivot_row);
                    }
                }
                rank += 1;
            }
        }

        let directions: Vec<Bits> = rows[..rank].iter().map(|r| r.x.clone()).collect();

        // Remaining rows are pure-Z stabilizers: (-1)^{k/2} Z^z fixes
        // z·x ≡ k/2 (mod 2) on the support.
        let mut cons: Vec<(Bits, bool)> = rows[rank..]
            .iter()
            .map(|r| {
                debug_assert!(r.is_z_type());
                debug_assert!(r.k % 2 == 0);
                (r.z.clone(), r.k % 4 == 2)
            })
            .collect();

        // Solve the linear system for a particular solution (free vars = 0).
        let mut base = Bits::zeros(n);
        let mut row_i = 0;
        let mut pivots: Vec<(usize, usize)> = Vec::new(); // (row, col)
        for col in 0..n {
            if row_i >= cons.len() {
                break;
            }
            if let Some(p) = (row_i..cons.len()).find(|&i| cons[i].0.get(col)) {
                cons.swap(row_i, p);
                let (pivot_bits, pivot_rhs) = cons[row_i].clone();
                for (i, (bits, rhs)) in cons.iter_mut().enumerate() {
                    if i != row_i && bits.get(col) {
                        bits.xor_assign(&pivot_bits);
                        *rhs ^= pivot_rhs;
                    }
                }
                pivots.push((row_i, col));
                row_i += 1;
            }
        }
        for &(r, col) in &pivots {
            // In reduced echelon form with free variables set to zero the
            // pivot variable equals the right-hand side.
            base.set(col, cons[r].1);
        }

        AffineSupport::new(base, directions)
    }

    /// Convenience: samples `shots` full computational-basis measurements
    /// without collapsing the state.
    pub fn sample_all(&self, shots: usize, rng: &mut impl Rng) -> Vec<Bits> {
        self.support().sample_many(shots, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reference_engine_smoke() {
        let mut r = StdRng::seed_from_u64(12345);
        let mut bell = Circuit::new(2);
        bell.h(0).cx(0, 1);
        let sim = ReferenceTableauSim::run(&bell, &mut r).unwrap();
        let sup = sim.support();
        assert_eq!(sup.dim(), 1);
        for s in sim.sample_all(30, &mut r) {
            let t = s.to_string();
            assert!(t == "00" || t == "11", "bad Bell sample {t}");
        }
        let mut sim = ReferenceTableauSim::new(2);
        sim.apply(CliffordGate::X, &[Qubit(1)]);
        assert!(!sim.measure(0, &mut r));
        assert!(sim.measure(1, &mut r));
    }
}
