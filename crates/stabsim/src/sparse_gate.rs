//! Sparse-gate tableau simulation over column-major bit-planes.
//!
//! # Layout
//!
//! The Stim-style *inverse* orientation of [`TableauSim`]'s layout: the
//! tableau's `2n+1` rows (destabilizers `0..n`, stabilizers `n..2n`, one
//! scratch row) are stored one **column per qubit** — qubit `q`'s X and Z
//! bits across all rows packed into `⌈(2n+1)/64⌉`-word columns held in two
//! flat arenas, plus one packed sign word-plane. A Clifford gate now reads
//! and rewrites only the 2–4 columns indexed by its qubits: 2–12
//! word-strided column ops per gate (`O(n/64)` words) instead of the
//! row-major engine's one-bit-probe-per-row `O(n)` sweep. All column
//! kernels run on the [`qcir::simd`] `u64×4` blocks.
//!
//! # Measurement
//!
//! The orientation trades gate cost against row operations, so
//! measurement re-creates the row view lazily:
//!
//! * **random outcome** — the collapse multiplies the pivot row into every
//!   row whose X-bit at the measured qubit is set. Instead of transposing,
//!   this runs *column-wise bit-sliced*: one pass over the `2n` columns
//!   with the pivot's per-qubit bits broadcast to all row lanes, the
//!   carry-save `i`-exponent counters of [`qcir::pauli_mul_phase_words`]
//!   kept as row-indexed planes, and a row mask (the measured X-column
//!   with the pivot pair cleared) restricting the column updates — every
//!   target row collapses in the same `O(n·n/64)` one pass costs;
//! * **deterministic outcome** — the stabilizer-product phase is
//!   order-dependent (each rowsum's phase depends on the accumulated
//!   product), so the selected stabilizer rows are extracted to row-major
//!   scratch (the lazy transpose) and folded through the existing
//!   [`qcir::pauli_mul_phase_words`] rowsum kernel in the exact order the
//!   row-major engines use.
//!
//! Outcome streams and seeded-RNG consumption are bit-identical to
//! [`TableauSim`] and [`ReferenceTableauSim`](crate::ReferenceTableauSim)
//! — same pivot choice, same draw sites, and support extraction shares
//! the row-major engines' Gaussian elimination
//! (`support_from_packed_rows`) verbatim — enforced by the three-way
//! `tableau_engine_parity` suite and the `gate_apply` series of
//! `bench_json`.

use crate::packed::PackedPauli;
use crate::tableau::{support_from_packed_rows, AffineSupport};
use crate::NonCliffordError;
use qcir::simd::{self, W4};
use qcir::{pauli_mul_phase_words, Bits, Circuit, CliffordGate, NoiseChannel, OpKind, Qubit};
use rand::Rng;

/// Splits two distinct columns of a flat `cols × cw` word arena mutably.
#[inline]
fn col_pair_mut(arena: &mut [u64], cw: usize, a: usize, b: usize) -> (&mut [u64], &mut [u64]) {
    debug_assert_ne!(a, b, "need distinct columns");
    if a < b {
        let (lo, hi) = arena.split_at_mut(b * cw);
        (&mut lo[a * cw..(a + 1) * cw], &mut hi[..cw])
    } else {
        let (lo, hi) = arena.split_at_mut(a * cw);
        (&mut hi[..cw], &mut lo[b * cw..(b + 1) * cw])
    }
}

#[inline]
fn get_bit(plane: &[u64], i: usize) -> bool {
    (plane[i >> 6] >> (i & 63)) & 1 == 1
}

#[inline]
fn set_bit(plane: &mut [u64], i: usize, v: bool) {
    let m = 1u64 << (i & 63);
    let w = &mut plane[i >> 6];
    *w = (*w & !m) | ((v as u64) << (i & 63));
}

/// Fused CX column kernel: `signs ^= xc & zt & !(xt ^ zc)`,
/// `xt ^= xc`, `zc ^= zt` — one `u64×4`-block pass over the four
/// columns and the sign plane.
#[inline]
fn cx_cols(xc: &[u64], zc: &mut [u64], xt: &mut [u64], zt: &[u64], signs: &mut [u64]) {
    let mut xcb = xc.chunks_exact(simd::LANES);
    let mut zcb = zc.chunks_exact_mut(simd::LANES);
    let mut xtb = xt.chunks_exact_mut(simd::LANES);
    let mut ztb = zt.chunks_exact(simd::LANES);
    let mut sb = signs.chunks_exact_mut(simd::LANES);
    for ((((xcw, zcw), xtw), ztw), sw) in xcb
        .by_ref()
        .zip(zcb.by_ref())
        .zip(xtb.by_ref())
        .zip(ztb.by_ref())
        .zip(sb.by_ref())
    {
        let xcv = W4::load(xcw);
        let zcv = W4::load(zcw);
        let xtv = W4::load(xtw);
        let ztv = W4::load(ztw);
        (W4::load(sw) ^ (xcv & ztv & !(xtv ^ zcv))).store(sw);
        (xtv ^ xcv).store(xtw);
        (zcv ^ ztv).store(zcw);
    }
    for ((((xcw, zcw), xtw), ztw), sw) in xcb
        .remainder()
        .iter()
        .zip(zcb.into_remainder())
        .zip(xtb.into_remainder())
        .zip(ztb.remainder())
        .zip(sb.into_remainder())
    {
        *sw ^= xcw & ztw & !(*xtw ^ *zcw);
        *xtw ^= xcw;
        *zcw ^= ztw;
    }
}

/// Fused CZ column kernel: `signs ^= xa & xb & (za ^ zb)`, `za ^= xb`,
/// `zb ^= xa`.
#[inline]
fn cz_cols(xa: &[u64], xb: &[u64], za: &mut [u64], zb: &mut [u64], signs: &mut [u64]) {
    let mut xab = xa.chunks_exact(simd::LANES);
    let mut xbb = xb.chunks_exact(simd::LANES);
    let mut zab = za.chunks_exact_mut(simd::LANES);
    let mut zbb = zb.chunks_exact_mut(simd::LANES);
    let mut sb = signs.chunks_exact_mut(simd::LANES);
    for ((((xaw, xbw), zaw), zbw), sw) in xab
        .by_ref()
        .zip(xbb.by_ref())
        .zip(zab.by_ref())
        .zip(zbb.by_ref())
        .zip(sb.by_ref())
    {
        let xav = W4::load(xaw);
        let xbv = W4::load(xbw);
        let zav = W4::load(zaw);
        let zbv = W4::load(zbw);
        (W4::load(sw) ^ (xav & xbv & (zav ^ zbv))).store(sw);
        (zav ^ xbv).store(zaw);
        (zbv ^ xav).store(zbw);
    }
    for ((((xaw, xbw), zaw), zbw), sw) in xab
        .remainder()
        .iter()
        .zip(xbb.remainder())
        .zip(zab.into_remainder())
        .zip(zbb.into_remainder())
        .zip(sb.into_remainder())
    {
        *sw ^= xaw & xbw & (*zaw ^ *zbw);
        *zaw ^= xbw;
        *zbw ^= xaw;
    }
}

/// One column's contribution to the bit-sliced collapse: with the pivot
/// row's bits at this qubit broadcast to every row lane (`x1m`/`z1m`),
/// advance the carry-save `i`-exponent planes (`cnt1`/`cnt2`, one 2-bit
/// counter per row) and XOR the pivot's bits into the rows selected by
/// `mask`. Lanes outside `mask` accumulate garbage counters that the
/// caller never reads — only `cnt2 & mask` reaches the sign plane.
#[inline]
fn collapse_col(
    xcol: &mut [u64],
    zcol: &mut [u64],
    cnt1: &mut [u64],
    cnt2: &mut [u64],
    mask: &[u64],
    x1m: u64,
    z1m: u64,
) {
    let x1v = W4::splat(x1m);
    let z1v = W4::splat(z1m);
    let mut xb = xcol.chunks_exact_mut(simd::LANES);
    let mut zb = zcol.chunks_exact_mut(simd::LANES);
    let mut c1b = cnt1.chunks_exact_mut(simd::LANES);
    let mut c2b = cnt2.chunks_exact_mut(simd::LANES);
    let mut mb = mask.chunks_exact(simd::LANES);
    for ((((xw, zw), c1w), c2w), mw) in xb
        .by_ref()
        .zip(zb.by_ref())
        .zip(c1b.by_ref())
        .zip(c2b.by_ref())
        .zip(mb.by_ref())
    {
        let x2 = W4::load(xw);
        let z2 = W4::load(zw);
        let mv = W4::load(mw);
        let newx = x1v ^ x2;
        let newz = z1v ^ z2;
        let x1z2 = x1v & z2;
        let anti = (z1v & x2) ^ x1z2;
        let c1 = W4::load(c1w);
        (W4::load(c2w) ^ ((c1 ^ newx ^ newz ^ x1z2) & anti)).store(c2w);
        (c1 ^ anti).store(c1w);
        (x2 ^ (x1v & mv)).store(xw);
        (z2 ^ (z1v & mv)).store(zw);
    }
    for ((((xw, zw), c1w), c2w), &mw) in xb
        .into_remainder()
        .iter_mut()
        .zip(zb.into_remainder())
        .zip(c1b.into_remainder())
        .zip(c2b.into_remainder())
        .zip(mb.remainder())
    {
        let x2 = *xw;
        let z2 = *zw;
        let newx = x1m ^ x2;
        let newz = z1m ^ z2;
        let x1z2 = x1m & z2;
        let anti = (z1m & x2) ^ x1z2;
        *c2w ^= (*c1w ^ newx ^ newz ^ x1z2) & anti;
        *c1w ^= anti;
        *xw = x2 ^ (x1m & mw);
        *zw = z2 ^ (z1m & mw);
    }
}

/// A stabilizer-circuit simulator in the inverse (column-major, Stim
/// "sparse gate") orientation.
///
/// Gates touch only the columns of their qubits — `O(n/64)` words per
/// gate against [`TableauSim`]'s `O(n)` row sweep — at the cost of
/// row-view reconstruction during measurement (see the module docs).
/// Pick it for gate-dense circuits; the two engines are bit-identical in
/// outcomes and RNG consumption, so the choice is purely a performance
/// knob (`cutkit::TableauEngine::SparseGate`).
///
/// ```
/// use stabsim::SparseGateTableauSim;
/// use qcir::Circuit;
/// use rand::SeedableRng;
///
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let sim = SparseGateTableauSim::run(&bell, &mut rng).unwrap();
/// for shot in sim.support().sample_many(20, &mut rng) {
///     assert!(shot.to_string() == "00" || shot.to_string() == "11");
/// }
/// ```
#[derive(Clone, Debug)]
pub struct SparseGateTableauSim {
    n: usize,
    /// Words per column (`⌈(2n+1)/64⌉`): one bit per tableau row.
    cw: usize,
    /// X bit-plane arena: qubit `q`'s column occupies words
    /// `q·cw .. (q+1)·cw`; bit `r` of the column is row `r`'s X bit at
    /// `q`. Rows `0..n` destabilizers, `n..2n` stabilizers, row `2n`
    /// scratch (whose X/Z lanes stay zero: gates only XOR/AND existing
    /// content into them, and nothing ever sets them).
    xs: Vec<u64>,
    /// Z bit-plane arena, same geometry.
    zs: Vec<u64>,
    /// Sign plane: bit `r` is row `r`'s `(-1)` phase.
    signs: Vec<u64>,
    /// Collapse scratch (target-row mask + carry-save counter planes),
    /// retained across measurements to keep the hot path allocation-free.
    mask: Vec<u64>,
    cnt1: Vec<u64>,
    cnt2: Vec<u64>,
}

impl SparseGateTableauSim {
    /// Creates the all-`|0⟩` state on `n` qubits.
    pub fn new(n: usize) -> Self {
        let cw = (2 * n + 1).div_ceil(64);
        let mut sim = SparseGateTableauSim {
            n,
            cw,
            xs: vec![0u64; n * cw],
            zs: vec![0u64; n * cw],
            signs: vec![0u64; cw],
            mask: vec![0u64; cw],
            cnt1: vec![0u64; cw],
            cnt2: vec![0u64; cw],
        };
        for q in 0..n {
            set_bit(&mut sim.xs[q * cw..(q + 1) * cw], q, true); // destabilizer q = X_q
            set_bit(&mut sim.zs[q * cw..(q + 1) * cw], n + q, true); // stabilizer q = Z_q
        }
        sim
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    #[inline]
    fn x_col(&self, q: usize) -> &[u64] {
        &self.xs[q * self.cw..(q + 1) * self.cw]
    }

    #[inline]
    fn z_col(&self, q: usize) -> &[u64] {
        &self.zs[q * self.cw..(q + 1) * self.cw]
    }

    /// Runs a circuit from `|0…0⟩`.
    ///
    /// Noise channels are applied as a *single random Pauli trajectory*
    /// (adequate for one-shot evaluation; use
    /// [`FrameSim`](crate::FrameSim) for noisy multi-shot sampling).
    ///
    /// # Errors
    ///
    /// Returns [`NonCliffordError`] if the circuit contains a non-Clifford
    /// gate.
    pub fn run(circuit: &Circuit, rng: &mut impl Rng) -> Result<Self, NonCliffordError> {
        let mut sim = SparseGateTableauSim::new(circuit.num_qubits());
        sim.run_ops(circuit, rng)?;
        Ok(sim)
    }

    /// Applies every operation of `circuit` to the current state.
    ///
    /// # Errors
    ///
    /// Returns [`NonCliffordError`] if the circuit contains a non-Clifford
    /// gate.
    pub fn run_ops(
        &mut self,
        circuit: &Circuit,
        rng: &mut impl Rng,
    ) -> Result<(), NonCliffordError> {
        for (i, op) in circuit.ops().iter().enumerate() {
            match &op.kind {
                OpKind::Gate(g) => {
                    let c = g.to_clifford().ok_or_else(|| NonCliffordError {
                        op_index: i,
                        name: g.name(),
                    })?;
                    self.apply(c, &op.qubits);
                }
                OpKind::Noise(ch) => self.apply_noise(*ch, &op.qubits, rng),
            }
        }
        Ok(())
    }

    /// Applies a Clifford gate.
    ///
    /// Column-major orientation: each gate is 2–12 word-strided ops on
    /// the 2–4 columns of its qubits plus the sign plane — `O(n/64)` per
    /// gate, independent of where the other qubits' bits sit.
    ///
    /// # Panics
    ///
    /// Panics if the qubit count does not match the gate arity or a qubit
    /// is out of range.
    pub fn apply(&mut self, gate: CliffordGate, qubits: &[Qubit]) {
        assert_eq!(qubits.len(), gate.arity(), "arity mismatch");
        for qb in qubits {
            assert!(qb.index() < self.n, "qubit out of range");
        }
        use CliffordGate as G;
        let cw = self.cw;
        match gate {
            G::I => {}
            G::X => {
                let q = qubits[0].index();
                simd::xor_into(&mut self.signs, &self.zs[q * cw..(q + 1) * cw]);
            }
            G::Y => {
                let q = qubits[0].index();
                simd::xor_into(&mut self.signs, &self.xs[q * cw..(q + 1) * cw]);
                simd::xor_into(&mut self.signs, &self.zs[q * cw..(q + 1) * cw]);
            }
            G::Z => {
                let q = qubits[0].index();
                simd::xor_into(&mut self.signs, &self.xs[q * cw..(q + 1) * cw]);
            }
            G::H => {
                let q = qubits[0].index();
                let x = &self.xs[q * cw..(q + 1) * cw];
                let z = &self.zs[q * cw..(q + 1) * cw];
                simd::and_xor_into(&mut self.signs, x, z);
                self.xs[q * cw..(q + 1) * cw].swap_with_slice(&mut self.zs[q * cw..(q + 1) * cw]);
            }
            G::S => {
                let q = qubits[0].index();
                let x = &self.xs[q * cw..(q + 1) * cw];
                let z = &mut self.zs[q * cw..(q + 1) * cw];
                simd::and_xor_into(&mut self.signs, x, z);
                simd::xor_into(z, x);
            }
            G::Sdg => {
                let q = qubits[0].index();
                let x = &self.xs[q * cw..(q + 1) * cw];
                let z = &mut self.zs[q * cw..(q + 1) * cw];
                simd::andnot_xor_into(&mut self.signs, x, z);
                simd::xor_into(z, x);
            }
            G::SqrtX => {
                let q = qubits[0].index();
                let z = &self.zs[q * cw..(q + 1) * cw];
                let x = &mut self.xs[q * cw..(q + 1) * cw];
                simd::andnot_xor_into(&mut self.signs, z, x);
                simd::xor_into(x, z);
            }
            G::SqrtXdg => {
                let q = qubits[0].index();
                let z = &self.zs[q * cw..(q + 1) * cw];
                let x = &mut self.xs[q * cw..(q + 1) * cw];
                simd::and_xor_into(&mut self.signs, z, x);
                simd::xor_into(x, z);
            }
            G::SqrtY => {
                let q = qubits[0].index();
                let x = &self.xs[q * cw..(q + 1) * cw];
                let z = &self.zs[q * cw..(q + 1) * cw];
                simd::andnot_xor_into(&mut self.signs, x, z);
                self.xs[q * cw..(q + 1) * cw].swap_with_slice(&mut self.zs[q * cw..(q + 1) * cw]);
            }
            G::SqrtYdg => {
                let q = qubits[0].index();
                let x = &self.xs[q * cw..(q + 1) * cw];
                let z = &self.zs[q * cw..(q + 1) * cw];
                simd::andnot_xor_into(&mut self.signs, z, x);
                self.xs[q * cw..(q + 1) * cw].swap_with_slice(&mut self.zs[q * cw..(q + 1) * cw]);
            }
            G::Cx => {
                let (c, t) = (qubits[0].index(), qubits[1].index());
                let (xc, xt) = col_pair_mut(&mut self.xs, cw, c, t);
                let (zc, zt) = col_pair_mut(&mut self.zs, cw, c, t);
                cx_cols(xc, zc, xt, zt, &mut self.signs);
            }
            G::Cz => {
                let (a, b) = (qubits[0].index(), qubits[1].index());
                let (xa, xb) = col_pair_mut(&mut self.xs, cw, a, b);
                let (za, zb) = col_pair_mut(&mut self.zs, cw, a, b);
                cz_cols(xa, xb, za, zb, &mut self.signs);
            }
            G::Cy => {
                self.apply(G::Sdg, &[qubits[1]]);
                self.apply(G::Cx, qubits);
                self.apply(G::S, &[qubits[1]]);
            }
            G::Swap => {
                let (a, b) = (qubits[0].index(), qubits[1].index());
                let (xa, xb) = col_pair_mut(&mut self.xs, cw, a, b);
                xa.swap_with_slice(xb);
                let (za, zb) = col_pair_mut(&mut self.zs, cw, a, b);
                za.swap_with_slice(zb);
            }
        }
    }

    /// Applies a Pauli noise channel as one random trajectory.
    pub fn apply_noise(&mut self, channel: NoiseChannel, qubits: &[Qubit], rng: &mut impl Rng) {
        use CliffordGate as G;
        match channel {
            NoiseChannel::BitFlip(p) => {
                if rng.random::<f64>() < p {
                    self.apply(G::X, qubits);
                }
            }
            NoiseChannel::PhaseFlip(p) => {
                if rng.random::<f64>() < p {
                    self.apply(G::Z, qubits);
                }
            }
            NoiseChannel::YFlip(p) => {
                if rng.random::<f64>() < p {
                    self.apply(G::Y, qubits);
                }
            }
            NoiseChannel::Depolarize1(p) => {
                if rng.random::<f64>() < p {
                    let g = [G::X, G::Y, G::Z][rng.random_range(0..3)];
                    self.apply(g, qubits);
                }
            }
            NoiseChannel::Depolarize2(p) => {
                if rng.random::<f64>() < p {
                    let k = rng.random_range(1..16u8);
                    for (bit_pos, q) in [(0u8, qubits[0]), (2u8, qubits[1])] {
                        match (k >> bit_pos) & 0b11 {
                            0b01 => self.apply(G::X, &[q]),
                            0b10 => self.apply(G::Z, &[q]),
                            0b11 => self.apply(G::Y, &[q]),
                            _ => {}
                        }
                    }
                }
            }
        }
    }

    /// First stabilizer row (`n..2n`) with an X bit at qubit `q`: one
    /// masked word scan down the qubit's X column.
    fn first_stab_x(&self, q: usize) -> Option<usize> {
        let n = self.n;
        if n == 0 {
            return None;
        }
        let col = self.x_col(q);
        for k in (n >> 6)..=((2 * n - 1) >> 6) {
            let lo = 64 * k;
            let mut w = col[k];
            if n > lo {
                w &= u64::MAX << (n - lo);
            }
            if 2 * n - lo < 64 {
                w &= (1u64 << (2 * n - lo)) - 1;
            }
            if w != 0 {
                return Some(lo + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// The random-outcome collapse, column-wise: multiplies pivot row `p`
    /// into every row selected by the measured qubit's X column (minus
    /// the pivot pair and the scratch row), all rows at once per column.
    fn collapse(&mut self, p: usize, q: usize) {
        let n = self.n;
        let cw = self.cw;
        let (pw, pb) = (p >> 6, (p & 63) as u32);
        self.mask.copy_from_slice(&self.xs[q * cw..(q + 1) * cw]);
        // Row p is rewritten below, row p−n anticommutes with the pivot
        // (its product would pick up an imaginary phase) and is
        // overwritten by the pivot copy anyway, and the scratch row's
        // X/Z lanes are structurally zero — cleared defensively.
        set_bit(&mut self.mask, p, false);
        set_bit(&mut self.mask, p - n, false);
        set_bit(&mut self.mask, 2 * n, false);
        self.cnt1.fill(0);
        self.cnt2.fill(0);
        {
            let mask = &self.mask;
            let cnt1 = &mut self.cnt1;
            let cnt2 = &mut self.cnt2;
            for j in 0..n {
                let xcol = &mut self.xs[j * cw..(j + 1) * cw];
                let x1 = (xcol[pw] >> pb) & 1;
                let zcol = &mut self.zs[j * cw..(j + 1) * cw];
                let z1 = (zcol[pw] >> pb) & 1;
                if x1 | z1 == 0 {
                    // Pivot is identity at qubit j: no phase contribution,
                    // no column change.
                    continue;
                }
                collapse_col(
                    xcol,
                    zcol,
                    cnt1,
                    cnt2,
                    mask,
                    0u64.wrapping_sub(x1),
                    0u64.wrapping_sub(z1),
                );
            }
        }
        // Fold the counters into the sign plane: per selected row,
        // g = cnt1 + 2·cnt2 (mod 4) must be real (cnt1 = 0), and the new
        // sign is s_r ⊕ s_p ⊕ cnt2.
        let spm = 0u64.wrapping_sub(get_bit(&self.signs, p) as u64);
        for k in 0..cw {
            debug_assert_eq!(
                self.cnt1[k] & self.mask[k],
                0,
                "rowsum produced imaginary phase"
            );
            self.signs[k] ^= (self.cnt2[k] ^ spm) & self.mask[k];
        }
        // copy_row(p → p−n) + clear_row(p), column-wise: one bit
        // read/rewrite per column.
        let d = p - n;
        let (dw, db) = (d >> 6, d & 63);
        for arena in [&mut self.xs, &mut self.zs] {
            for j in 0..n {
                let col = &mut arena[j * cw..(j + 1) * cw];
                let bit = (col[pw] >> pb) & 1;
                col[dw] = (col[dw] & !(1u64 << db)) | (bit << db);
                col[pw] &= !(1u64 << pb);
            }
        }
        let sp = (self.signs[pw] >> pb) & 1;
        self.signs[dw] = (self.signs[dw] & !(1u64 << db)) | (sp << db);
        self.signs[pw] &= !(1u64 << pb);
    }

    /// Extracts row `r`'s X/Z bits into row-major word scratch
    /// (`⌈n/64⌉` words) — the lazy transpose the deterministic
    /// measurement branch and the row-extraction APIs pay.
    fn extract_row(&self, r: usize, xrow: &mut [u64], zrow: &mut [u64]) {
        let cw = self.cw;
        let (rw, rb) = (r >> 6, (r & 63) as u32);
        let mut accx = 0u64;
        let mut accz = 0u64;
        let mut w = 0;
        for j in 0..self.n {
            accx |= ((self.xs[j * cw + rw] >> rb) & 1) << (j & 63);
            accz |= ((self.zs[j * cw + rw] >> rb) & 1) << (j & 63);
            if j & 63 == 63 {
                xrow[w] = accx;
                zrow[w] = accz;
                accx = 0;
                accz = 0;
                w += 1;
            }
        }
        if self.n & 63 != 0 {
            xrow[w] = accx;
            zrow[w] = accz;
        }
    }

    /// Deterministic-outcome branch: folds the stabilizer rows selected
    /// by the destabilizer X column through the row-major rowsum kernel,
    /// in increasing row order — the phase recurrence is order-dependent,
    /// so this matches [`TableauSim`]'s scratch accumulation exactly.
    fn deterministic_measure(&self, q: usize) -> bool {
        let n = self.n;
        let bw = n.div_ceil(64);
        let mut xacc = vec![0u64; bw];
        let mut zacc = vec![0u64; bw];
        let mut xrow = vec![0u64; bw];
        let mut zrow = vec![0u64; bw];
        let xq = self.x_col(q);
        let mut sign = 0u32;
        for i in 0..n {
            if !get_bit(xq, i) {
                continue;
            }
            self.extract_row(n + i, &mut xrow, &mut zrow);
            let g = pauli_mul_phase_words(&xrow, &zrow, &mut xacc, &mut zacc) as u32;
            let ph = (2 * (sign + get_bit(&self.signs, n + i) as u32) + g) % 4;
            debug_assert!(ph == 0 || ph == 2, "rowsum produced imaginary phase");
            sign = (ph == 2) as u32;
        }
        sign == 1
    }

    /// Measures qubit `q` in the computational basis, collapsing the state.
    ///
    /// Returns the outcome bit. Random outcomes draw from `rng` — one
    /// boolean, at the same point in the schedule as the row-major
    /// engines, so seeded streams stay aligned across engines.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn measure(&mut self, q: usize, rng: &mut impl Rng) -> bool {
        assert!(q < self.n, "qubit out of range");
        let cw = self.cw;
        if let Some(p) = self.first_stab_x(q) {
            self.collapse(p, q);
            let outcome: bool = rng.random();
            set_bit(&mut self.zs[q * cw..(q + 1) * cw], p, true);
            set_bit(&mut self.signs, p, outcome);
            outcome
        } else {
            self.deterministic_measure(q)
        }
    }

    /// Extracts row `row` of the tableau as a packed Pauli.
    fn row_pauli(&self, row: usize) -> PackedPauli {
        let bw = self.n.div_ceil(64);
        let mut xrow = vec![0u64; bw];
        let mut zrow = vec![0u64; bw];
        self.extract_row(row, &mut xrow, &mut zrow);
        let mut out = PackedPauli::identity(self.n);
        out.x.copy_from_words(&xrow);
        out.z.copy_from_words(&zrow);
        // Y = i·X·Z per (1,1) qubit: the i-exponent is the Y count mod 4.
        let ys = out.x.and_count_ones(&out.z) % 4;
        out.k = ((2 * get_bit(&self.signs, row) as u32 + ys) % 4) as u8;
        out
    }

    /// The current stabilizer generators as phase-tracked Pauli strings.
    pub fn stabilizers(&self) -> Vec<qcir::PauliString> {
        (self.n..2 * self.n)
            .map(|r| self.row_pauli(r).to_string_form())
            .collect()
    }

    /// The current destabilizer generators.
    pub fn destabilizers(&self) -> Vec<qcir::PauliString> {
        (0..self.n)
            .map(|r| self.row_pauli(r).to_string_form())
            .collect()
    }

    /// Exact expectation value `⟨ψ|P|ψ⟩ ∈ {-1, 0, +1}` of a Pauli string.
    ///
    /// The commutation screen runs column-wise: one pass over the `2n`
    /// columns XOR-accumulates an anticommutation bit-plane for *all*
    /// rows at once (`acc ^= x_col·P.z[j] ⊕ z_col·P.x[j]`), so the
    /// per-stabilizer inner products of the row-major engine collapse
    /// into `O(n·n/64)` total. Only the rows that participate in the
    /// membership product are then extracted.
    ///
    /// # Panics
    ///
    /// Panics if `p.len() != num_qubits` or the string carries an
    /// imaginary phase (non-Hermitian operator).
    pub fn expectation(&self, p: &qcir::PauliString) -> i32 {
        assert_eq!(p.len(), self.n, "operator width mismatch");
        assert!(p.phase() % 2 == 0, "non-Hermitian Pauli operator");
        let target = PackedPauli::from_string(p);
        let n = self.n;
        let cw = self.cw;
        let mut anti = vec![0u64; cw];
        for j in 0..n {
            if target.z.get(j) {
                simd::xor_into(&mut anti, self.x_col(j));
            }
            if target.x.get(j) {
                simd::xor_into(&mut anti, self.z_col(j));
            }
        }
        // ⟨P⟩ = 0 unless P commutes with every stabilizer generator.
        for r in n..2 * n {
            if get_bit(&anti, r) {
                return 0;
            }
        }
        // P = ± Π of the stabilizers paired with anticommuting
        // destabilizers.
        let mut product = PackedPauli::identity(n);
        for i in 0..n {
            if get_bit(&anti, i) {
                product.mul_assign(&self.row_pauli(n + i));
            }
        }
        debug_assert_eq!(product.x, target.x, "membership reconstruction failed");
        debug_assert_eq!(product.z, target.z, "membership reconstruction failed");
        let k_diff = (4 + product.k - target.k) % 4;
        debug_assert!(k_diff % 2 == 0);
        if k_diff == 0 {
            1
        } else {
            -1
        }
    }

    /// The affine-subspace support of the computational-basis measurement
    /// distribution.
    ///
    /// The stabilizer rows are extracted to row-major form (the lazy
    /// transpose, `O(n²/64)`) and eliminated by the *same*
    /// `support_from_packed_rows` kernel the row-major engines use, so
    /// the emitted base/directions — and every RNG draw of subsequent
    /// sampling — are bit-identical across engines.
    pub fn support(&self) -> AffineSupport {
        let n = self.n;
        let rows: Vec<PackedPauli> = (n..2 * n).map(|r| self.row_pauli(r)).collect();
        support_from_packed_rows(n, rows)
    }

    /// Convenience: samples `shots` full computational-basis measurements
    /// without collapsing the state.
    pub fn sample_all(&self, shots: usize, rng: &mut impl Rng) -> Vec<Bits> {
        self.support().sample_many(shots, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(12345)
    }

    #[test]
    fn fresh_state_measures_zero() {
        let mut sim = SparseGateTableauSim::new(3);
        let mut r = rng();
        for q in 0..3 {
            assert!(!sim.measure(q, &mut r));
        }
    }

    #[test]
    fn x_flips_measurement() {
        let mut sim = SparseGateTableauSim::new(2);
        sim.apply(CliffordGate::X, &[Qubit(1)]);
        let mut r = rng();
        assert!(!sim.measure(0, &mut r));
        assert!(sim.measure(1, &mut r));
    }

    #[test]
    fn bell_state_correlations() {
        let mut r = rng();
        for _ in 0..20 {
            let mut sim = SparseGateTableauSim::new(2);
            sim.apply(CliffordGate::H, &[Qubit(0)]);
            sim.apply(CliffordGate::Cx, &[Qubit(0), Qubit(1)]);
            let a = sim.measure(0, &mut r);
            let b = sim.measure(1, &mut r);
            assert_eq!(a, b, "Bell outcomes must correlate");
        }
    }

    #[test]
    fn repeated_measurement_is_stable() {
        let mut r = rng();
        let mut sim = SparseGateTableauSim::new(1);
        sim.apply(CliffordGate::H, &[Qubit(0)]);
        let first = sim.measure(0, &mut r);
        for _ in 0..5 {
            assert_eq!(sim.measure(0, &mut r), first);
        }
    }

    #[test]
    fn stabilizers_of_fresh_state() {
        let sim = SparseGateTableauSim::new(2);
        let stabs: Vec<String> = sim.stabilizers().iter().map(|s| s.to_string()).collect();
        assert_eq!(stabs, vec!["+ZI", "+IZ"]);
        let destabs: Vec<String> = sim.destabilizers().iter().map(|s| s.to_string()).collect();
        assert_eq!(destabs, vec!["+XI", "+IX"]);
    }

    #[test]
    fn bell_expectations() {
        use qcir::PauliString;
        let mut sim = SparseGateTableauSim::new(2);
        sim.apply(CliffordGate::H, &[Qubit(0)]);
        sim.apply(CliffordGate::Cx, &[Qubit(0), Qubit(1)]);
        let exp = |s: &str| sim.expectation(&PauliString::parse(s).unwrap());
        assert_eq!(exp("XX"), 1);
        assert_eq!(exp("ZZ"), 1);
        assert_eq!(exp("YY"), -1);
        assert_eq!(exp("ZI"), 0);
        assert_eq!(exp("IX"), 0);
        assert_eq!(exp("II"), 1);
    }

    /// Every gate, measurement schedule, and noise trajectory against the
    /// packed row-major engine, including multiword row/column widths:
    /// states, outcomes, and RNG draw counts must agree step by step.
    #[test]
    fn matches_packed_engine_gate_for_gate() {
        use crate::TableauSim;
        for n in [1usize, 2, 3, 6, 31, 33, 65] {
            let mut gen = StdRng::seed_from_u64(7 * n as u64 + 1);
            let mut c = Circuit::new(n);
            for _ in 0..8 * n {
                let q = gen.random_range(0..n);
                match gen.random_range(0..12) {
                    0 => c.h(q),
                    1 => c.s(q),
                    2 => c.sdg(q),
                    3 => c.x(q),
                    4 => c.y(q),
                    5 => c.z(q),
                    6 => c.add_gate(qcir::Gate::SqrtX, &[q]),
                    7 => c.add_gate(qcir::Gate::SqrtY, &[q]),
                    _ => {
                        let mut b = gen.random_range(0..n);
                        if n > 1 {
                            while b == q {
                                b = gen.random_range(0..n);
                            }
                            match gen.random_range(0..4) {
                                0 => c.cx(q, b),
                                1 => c.cz(q, b),
                                2 => c.cy(q, b),
                                _ => c.swap(q, b),
                            }
                        } else {
                            c.h(q)
                        }
                    }
                };
            }
            let mut r1 = StdRng::seed_from_u64(99);
            let mut r2 = StdRng::seed_from_u64(99);
            let mut packed = TableauSim::run(&c, &mut r1).unwrap();
            let mut sparse = SparseGateTableauSim::run(&c, &mut r2).unwrap();
            let stab_strings = |v: Vec<qcir::PauliString>| -> Vec<String> {
                v.iter().map(|s| s.to_string()).collect()
            };
            assert_eq!(
                stab_strings(packed.stabilizers()),
                stab_strings(sparse.stabilizers()),
                "stabilizers diverged at n={n}"
            );
            assert_eq!(
                stab_strings(packed.destabilizers()),
                stab_strings(sparse.destabilizers()),
                "destabilizers diverged at n={n}"
            );
            let sup_p = packed.support();
            let sup_s = sparse.support();
            assert_eq!(sup_p.base(), sup_s.base(), "support base diverged at n={n}");
            assert_eq!(
                sup_p.directions(),
                sup_s.directions(),
                "support directions diverged at n={n}"
            );
            for q in 0..n {
                let a = packed.measure(q, &mut r1);
                let b = sparse.measure(q, &mut r2);
                assert_eq!(a, b, "measure({q}) diverged at n={n}");
                // Re-measure: deterministic branch must agree too.
                assert_eq!(
                    packed.measure(q, &mut r1),
                    sparse.measure(q, &mut r2),
                    "re-measure({q}) diverged at n={n}"
                );
            }
            assert_eq!(
                stab_strings(packed.stabilizers()),
                stab_strings(sparse.stabilizers()),
                "post-collapse stabilizers diverged at n={n}"
            );
        }
    }
}
