//! Aaronson–Gottesman tableau simulation with bit-packed columns.

use crate::packed::PackedPauli;
use crate::NonCliffordError;
use qcir::{Bits, Circuit, CliffordGate, NoiseChannel, OpKind, PauliString, Qubit};
use rand::Rng;

/// Splits two distinct columns out of a column store for simultaneous
/// mutation.
fn pair_mut(cols: &mut [Vec<u64>], a: usize, b: usize) -> (&mut Vec<u64>, &mut Vec<u64>) {
    assert_ne!(a, b, "need distinct columns");
    if a < b {
        let (lo, hi) = cols.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = cols.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}

#[inline]
fn get_bit(v: &[u64], r: usize) -> bool {
    (v[r / 64] >> (r % 64)) & 1 == 1
}

#[inline]
fn set_bit(v: &mut [u64], r: usize, b: bool) {
    let m = 1u64 << (r % 64);
    if b {
        v[r / 64] |= m;
    } else {
        v[r / 64] &= !m;
    }
}

/// A stabilizer-circuit simulator in the style of Stim/CHP.
///
/// The tableau stores `n` destabilizer and `n` stabilizer generators (plus a
/// scratch row) in *column-major* bit-packed form: gate application is a
/// handful of word-wide boolean operations per qubit column, `O(n/64)` per
/// gate. Measurement uses the Aaronson–Gottesman row-sum algorithm, and bulk
/// computational-basis sampling extracts the affine-subspace support of the
/// state once (`O(n³/64)`) and then draws shots in `O(n·r/64)` each — the
/// property that lets SuperSim sample 300-qubit Clifford fragments in
/// milliseconds.
///
/// ```
/// use stabsim::TableauSim;
/// use qcir::Circuit;
/// use rand::SeedableRng;
///
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let sim = TableauSim::run(&bell, &mut rng).unwrap();
/// for shot in sim.support().sample_many(20, &mut rng) {
///     assert!(shot.to_string() == "00" || shot.to_string() == "11");
/// }
/// ```
#[derive(Clone, Debug)]
pub struct TableauSim {
    n: usize,
    /// Words per column; rows are `0..n` destabilizers, `n..2n` stabilizers,
    /// row `2n` scratch.
    words: usize,
    xs: Vec<Vec<u64>>,
    zs: Vec<Vec<u64>>,
    signs: Vec<u64>,
}

impl TableauSim {
    /// Creates the all-`|0⟩` state on `n` qubits.
    pub fn new(n: usize) -> Self {
        let rows = 2 * n + 1;
        let words = rows.div_ceil(64).max(1);
        let mut sim = TableauSim {
            n,
            words,
            xs: vec![vec![0u64; words]; n],
            zs: vec![vec![0u64; words]; n],
            signs: vec![0u64; words],
        };
        for q in 0..n {
            set_bit(&mut sim.xs[q], q, true); // destabilizer q = X_q
            set_bit(&mut sim.zs[q], n + q, true); // stabilizer q = Z_q
        }
        sim
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Runs a circuit from `|0…0⟩`.
    ///
    /// Noise channels are applied as a *single random Pauli trajectory*
    /// (adequate for one-shot evaluation; use
    /// [`FrameSim`](crate::FrameSim) for noisy multi-shot sampling).
    ///
    /// # Errors
    ///
    /// Returns [`NonCliffordError`] if the circuit contains a non-Clifford
    /// gate.
    pub fn run(circuit: &Circuit, rng: &mut impl Rng) -> Result<Self, NonCliffordError> {
        let mut sim = TableauSim::new(circuit.num_qubits());
        sim.run_ops(circuit, rng)?;
        Ok(sim)
    }

    /// Applies every operation of `circuit` to the current state.
    ///
    /// # Errors
    ///
    /// Returns [`NonCliffordError`] if the circuit contains a non-Clifford
    /// gate.
    pub fn run_ops(
        &mut self,
        circuit: &Circuit,
        rng: &mut impl Rng,
    ) -> Result<(), NonCliffordError> {
        for (i, op) in circuit.ops().iter().enumerate() {
            match &op.kind {
                OpKind::Gate(g) => {
                    let c = g.to_clifford().ok_or_else(|| NonCliffordError {
                        op_index: i,
                        name: g.name(),
                    })?;
                    self.apply(c, &op.qubits);
                }
                OpKind::Noise(ch) => self.apply_noise(*ch, &op.qubits, rng),
            }
        }
        Ok(())
    }

    /// Applies a Clifford gate.
    ///
    /// # Panics
    ///
    /// Panics if the qubit count does not match the gate arity or a qubit is
    /// out of range.
    pub fn apply(&mut self, gate: CliffordGate, qubits: &[Qubit]) {
        assert_eq!(qubits.len(), gate.arity(), "arity mismatch");
        use CliffordGate as G;
        let w = self.words;
        match gate {
            G::I => {}
            G::X => {
                let q = qubits[0].index();
                for k in 0..w {
                    self.signs[k] ^= self.zs[q][k];
                }
            }
            G::Y => {
                let q = qubits[0].index();
                for k in 0..w {
                    self.signs[k] ^= self.xs[q][k] ^ self.zs[q][k];
                }
            }
            G::Z => {
                let q = qubits[0].index();
                for k in 0..w {
                    self.signs[k] ^= self.xs[q][k];
                }
            }
            G::H => {
                let q = qubits[0].index();
                for k in 0..w {
                    self.signs[k] ^= self.xs[q][k] & self.zs[q][k];
                }
                let (x, z) = (&mut self.xs[q], &mut self.zs[q]);
                std::mem::swap(x, z);
            }
            G::S => {
                let q = qubits[0].index();
                for k in 0..w {
                    self.signs[k] ^= self.xs[q][k] & self.zs[q][k];
                    self.zs[q][k] ^= self.xs[q][k];
                }
            }
            G::Sdg => {
                let q = qubits[0].index();
                for k in 0..w {
                    self.signs[k] ^= self.xs[q][k] & !self.zs[q][k];
                    self.zs[q][k] ^= self.xs[q][k];
                }
            }
            G::SqrtX => {
                let q = qubits[0].index();
                for k in 0..w {
                    self.signs[k] ^= self.zs[q][k] & !self.xs[q][k];
                    self.xs[q][k] ^= self.zs[q][k];
                }
            }
            G::SqrtXdg => {
                let q = qubits[0].index();
                for k in 0..w {
                    self.signs[k] ^= self.zs[q][k] & self.xs[q][k];
                    self.xs[q][k] ^= self.zs[q][k];
                }
            }
            G::SqrtY => {
                let q = qubits[0].index();
                for k in 0..w {
                    self.signs[k] ^= self.xs[q][k] & !self.zs[q][k];
                }
                std::mem::swap(&mut self.xs[q], &mut self.zs[q]);
            }
            G::SqrtYdg => {
                let q = qubits[0].index();
                for k in 0..w {
                    self.signs[k] ^= self.zs[q][k] & !self.xs[q][k];
                }
                std::mem::swap(&mut self.xs[q], &mut self.zs[q]);
            }
            G::Cx => {
                let (c, t) = (qubits[0].index(), qubits[1].index());
                for k in 0..w {
                    self.signs[k] ^=
                        self.xs[c][k] & self.zs[t][k] & !(self.xs[t][k] ^ self.zs[c][k]);
                }
                {
                    let (xc, xt) = pair_mut(&mut self.xs, c, t);
                    for k in 0..w {
                        xt[k] ^= xc[k];
                    }
                }
                let (zc, zt) = pair_mut(&mut self.zs, c, t);
                for k in 0..w {
                    zc[k] ^= zt[k];
                }
            }
            G::Cz => {
                let (a, b) = (qubits[0].index(), qubits[1].index());
                for k in 0..w {
                    self.signs[k] ^=
                        self.xs[a][k] & self.xs[b][k] & (self.zs[a][k] ^ self.zs[b][k]);
                }
                for k in 0..w {
                    let xa = self.xs[a][k];
                    let xb = self.xs[b][k];
                    self.zs[a][k] ^= xb;
                    self.zs[b][k] ^= xa;
                }
            }
            G::Cy => {
                self.apply(G::Sdg, &[qubits[1]]);
                self.apply(G::Cx, qubits);
                self.apply(G::S, &[qubits[1]]);
            }
            G::Swap => {
                let (a, b) = (qubits[0].index(), qubits[1].index());
                self.xs.swap(a, b);
                self.zs.swap(a, b);
            }
        }
    }

    /// Applies a Pauli noise channel as one random trajectory.
    pub fn apply_noise(&mut self, channel: NoiseChannel, qubits: &[Qubit], rng: &mut impl Rng) {
        use CliffordGate as G;
        match channel {
            NoiseChannel::BitFlip(p) => {
                if rng.random::<f64>() < p {
                    self.apply(G::X, qubits);
                }
            }
            NoiseChannel::PhaseFlip(p) => {
                if rng.random::<f64>() < p {
                    self.apply(G::Z, qubits);
                }
            }
            NoiseChannel::YFlip(p) => {
                if rng.random::<f64>() < p {
                    self.apply(G::Y, qubits);
                }
            }
            NoiseChannel::Depolarize1(p) => {
                if rng.random::<f64>() < p {
                    let g = [G::X, G::Y, G::Z][rng.random_range(0..3)];
                    self.apply(g, qubits);
                }
            }
            NoiseChannel::Depolarize2(p) => {
                if rng.random::<f64>() < p {
                    let k = rng.random_range(1..16u8);
                    for (bit_pos, q) in [(0u8, qubits[0]), (2u8, qubits[1])] {
                        match (k >> bit_pos) & 0b11 {
                            0b01 => self.apply(G::X, &[q]),
                            0b10 => self.apply(G::Z, &[q]),
                            0b11 => self.apply(G::Y, &[q]),
                            _ => {}
                        }
                    }
                }
            }
        }
    }

    #[inline]
    fn x_bit(&self, q: usize, row: usize) -> bool {
        get_bit(&self.xs[q], row)
    }

    #[inline]
    fn z_bit(&self, q: usize, row: usize) -> bool {
        get_bit(&self.zs[q], row)
    }

    #[inline]
    fn sign_bit(&self, row: usize) -> bool {
        get_bit(&self.signs, row)
    }

    /// The Aaronson–Gottesman phase function `g` (exponent of `i`
    /// contributed when multiplying single-qubit Paulis `(x1,z1)·(x2,z2)`).
    #[inline]
    fn g(x1: bool, z1: bool, x2: bool, z2: bool) -> i32 {
        match (x1, z1) {
            (false, false) => 0,
            (true, true) => z2 as i32 - x2 as i32,
            (true, false) => z2 as i32 * (2 * x2 as i32 - 1),
            (false, true) => x2 as i32 * (1 - 2 * z2 as i32),
        }
    }

    /// Row operation: `row_h := row_i · row_h` with exact phase tracking.
    fn rowsum(&mut self, h: usize, i: usize) {
        let mut ph: i32 = 2 * (self.sign_bit(h) as i32) + 2 * (self.sign_bit(i) as i32);
        for q in 0..self.n {
            let (x1, z1) = (self.x_bit(q, i), self.z_bit(q, i));
            let (x2, z2) = (self.x_bit(q, h), self.z_bit(q, h));
            ph += Self::g(x1, z1, x2, z2);
            set_bit(&mut self.xs[q], h, x1 ^ x2);
            set_bit(&mut self.zs[q], h, z1 ^ z2);
        }
        let ph = ph.rem_euclid(4);
        debug_assert!(ph == 0 || ph == 2, "rowsum produced imaginary phase");
        set_bit(&mut self.signs, h, ph == 2);
    }

    fn copy_row(&mut self, src: usize, dst: usize) {
        for q in 0..self.n {
            let x = self.x_bit(q, src);
            let z = self.z_bit(q, src);
            set_bit(&mut self.xs[q], dst, x);
            set_bit(&mut self.zs[q], dst, z);
        }
        let s = self.sign_bit(src);
        set_bit(&mut self.signs, dst, s);
    }

    fn clear_row(&mut self, row: usize) {
        for q in 0..self.n {
            set_bit(&mut self.xs[q], row, false);
            set_bit(&mut self.zs[q], row, false);
        }
        set_bit(&mut self.signs, row, false);
    }

    /// Measures qubit `q` in the computational basis, collapsing the state.
    ///
    /// Returns the outcome bit. Random outcomes draw from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn measure(&mut self, q: usize, rng: &mut impl Rng) -> bool {
        assert!(q < self.n, "qubit out of range");
        let n = self.n;
        if let Some(p) = (n..2 * n).find(|&r| self.x_bit(q, r)) {
            // Random outcome. Row p's own destabilizer partner (row p−n)
            // anticommutes with row p, so multiplying it would produce an
            // imaginary phase — but it is overwritten below anyway, so it
            // is skipped here.
            for r in 0..2 * n {
                if r != p && r != p - n && self.x_bit(q, r) {
                    self.rowsum(r, p);
                }
            }
            self.copy_row(p, p - n);
            self.clear_row(p);
            let outcome: bool = rng.random();
            set_bit(&mut self.zs[q], p, true);
            set_bit(&mut self.signs, p, outcome);
            outcome
        } else {
            // Deterministic outcome.
            let scratch = 2 * n;
            self.clear_row(scratch);
            for i in 0..n {
                if self.x_bit(q, i) {
                    self.rowsum(scratch, n + i);
                }
            }
            self.sign_bit(scratch)
        }
    }

    /// Extracts row `row` of the tableau as a packed Pauli.
    fn row_pauli(&self, row: usize) -> PackedPauli {
        let mut x = Bits::zeros(self.n);
        let mut z = Bits::zeros(self.n);
        let mut ys = 0u8;
        for q in 0..self.n {
            let xb = self.x_bit(q, row);
            let zb = self.z_bit(q, row);
            x.set(q, xb);
            z.set(q, zb);
            if xb && zb {
                ys = (ys + 1) % 4;
            }
        }
        PackedPauli {
            x,
            z,
            k: (2 * self.sign_bit(row) as u8 + ys) % 4,
        }
    }

    /// The current stabilizer generators as phase-tracked Pauli strings.
    pub fn stabilizers(&self) -> Vec<PauliString> {
        (self.n..2 * self.n)
            .map(|r| self.row_pauli(r).to_string_form())
            .collect()
    }

    /// The current destabilizer generators.
    pub fn destabilizers(&self) -> Vec<PauliString> {
        (0..self.n)
            .map(|r| self.row_pauli(r).to_string_form())
            .collect()
    }

    /// Exact expectation value `⟨ψ|P|ψ⟩ ∈ {-1, 0, +1}` of a Pauli string.
    ///
    /// This is the zero-shot Clifford-specific optimization of the paper's
    /// §IX: a Pauli either anticommutes with some stabilizer (expectation 0)
    /// or is ± a product of stabilizer generators, whose sign is computed
    /// exactly from the tableau.
    ///
    /// # Panics
    ///
    /// Panics if `p.len() != num_qubits` or the string carries an imaginary
    /// phase (non-Hermitian operator).
    pub fn expectation(&self, p: &PauliString) -> i32 {
        assert_eq!(p.len(), self.n, "operator width mismatch");
        assert!(p.phase() % 2 == 0, "non-Hermitian Pauli operator");
        let target = PackedPauli::from_string(p);
        // ⟨P⟩ = 0 unless P commutes with every stabilizer generator.
        for r in self.n..2 * self.n {
            if !self.row_pauli(r).commutes_with(&target) {
                return 0;
            }
        }
        // P = ± Π of the stabilizers paired with anticommuting destabilizers.
        let mut product = PackedPauli::identity(self.n);
        for i in 0..self.n {
            if !self.row_pauli(i).commutes_with(&target) {
                product.mul_assign(&self.row_pauli(self.n + i));
            }
        }
        debug_assert_eq!(product.x, target.x, "membership reconstruction failed");
        debug_assert_eq!(product.z, target.z, "membership reconstruction failed");
        let k_diff = (4 + product.k - target.k) % 4;
        debug_assert!(k_diff % 2 == 0);
        if k_diff == 0 {
            1
        } else {
            -1
        }
    }

    /// The affine-subspace support of the computational-basis measurement
    /// distribution.
    ///
    /// The distribution of measuring all qubits of a stabilizer state is
    /// uniform over `base ⊕ span(directions)`; this performs the one-time
    /// `O(n³/64)` Gaussian elimination that makes bulk sampling cheap.
    pub fn support(&self) -> AffineSupport {
        let n = self.n;
        let mut rows: Vec<PackedPauli> = (n..2 * n).map(|r| self.row_pauli(r)).collect();

        // Echelon form on the X-block.
        let mut rank = 0;
        for col in 0..n {
            if let Some(pivot) = (rank..n).find(|&i| rows[i].x.get(col)) {
                rows.swap(rank, pivot);
                let pivot_row = rows[rank].clone();
                for (i, row) in rows.iter_mut().enumerate() {
                    if i != rank && row.x.get(col) {
                        row.mul_assign(&pivot_row);
                    }
                }
                rank += 1;
            }
        }

        let directions: Vec<Bits> = rows[..rank].iter().map(|r| r.x.clone()).collect();

        // Remaining rows are pure-Z stabilizers: (-1)^{k/2} Z^z fixes
        // z·x ≡ k/2 (mod 2) on the support.
        let mut cons: Vec<(Bits, bool)> = rows[rank..]
            .iter()
            .map(|r| {
                debug_assert!(r.is_z_type());
                debug_assert!(r.k % 2 == 0);
                (r.z.clone(), r.k % 4 == 2)
            })
            .collect();

        // Solve the linear system for a particular solution (free vars = 0).
        let mut base = Bits::zeros(n);
        let mut row_i = 0;
        let mut pivots: Vec<(usize, usize)> = Vec::new(); // (row, col)
        for col in 0..n {
            if row_i >= cons.len() {
                break;
            }
            if let Some(p) = (row_i..cons.len()).find(|&i| cons[i].0.get(col)) {
                cons.swap(row_i, p);
                let (pivot_bits, pivot_rhs) = cons[row_i].clone();
                for (i, (bits, rhs)) in cons.iter_mut().enumerate() {
                    if i != row_i && bits.get(col) {
                        bits.xor_assign(&pivot_bits);
                        *rhs ^= pivot_rhs;
                    }
                }
                pivots.push((row_i, col));
                row_i += 1;
            }
        }
        for &(r, col) in &pivots {
            // In reduced echelon form with free variables set to zero the
            // pivot variable equals the right-hand side.
            base.set(col, cons[r].1);
        }

        AffineSupport { base, directions }
    }

    /// Convenience: samples `shots` full computational-basis measurements
    /// without collapsing the state.
    pub fn sample_all(&self, shots: usize, rng: &mut impl Rng) -> Vec<Bits> {
        self.support().sample_many(shots, rng)
    }
}

/// The support of a stabilizer state's computational-basis distribution:
/// the uniform distribution over `base ⊕ span(directions)`.
#[derive(Clone, Debug)]
pub struct AffineSupport {
    base: Bits,
    directions: Vec<Bits>,
}

impl AffineSupport {
    /// Constructs a support from a base point and (independent) directions.
    pub fn new(base: Bits, directions: Vec<Bits>) -> Self {
        AffineSupport { base, directions }
    }

    /// The dimension `r` of the support subspace (the distribution is
    /// uniform over `2^r` points).
    pub fn dim(&self) -> usize {
        self.directions.len()
    }

    /// The base point.
    pub fn base(&self) -> &Bits {
        &self.base
    }

    /// The subspace directions.
    pub fn directions(&self) -> &[Bits] {
        &self.directions
    }

    /// XORs a random subset of the directions into `x`, drawing the
    /// selection mask 64 directions at a time (one RNG call per block
    /// instead of one per direction).
    fn xor_random_directions(&self, x: &mut Bits, rng: &mut impl Rng) {
        for block in self.directions.chunks(64) {
            let mut mask: u64 = rng.random();
            for d in block {
                if mask & 1 == 1 {
                    x.xor_assign(d);
                }
                mask >>= 1;
            }
        }
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut impl Rng) -> Bits {
        let mut x = self.base.clone();
        self.xor_random_directions(&mut x, rng);
        x
    }

    /// Draws one sample into an existing row, reusing its allocation.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the support width.
    pub fn sample_into(&self, out: &mut Bits, rng: &mut impl Rng) {
        out.copy_from(&self.base);
        self.xor_random_directions(out, rng);
    }

    /// Draws `shots` samples. Each returned row is necessarily a fresh
    /// allocation; use [`AffineSupport::sample_counts`] for the
    /// scratch-reusing bulk path.
    pub fn sample_many(&self, shots: usize, rng: &mut impl Rng) -> Vec<Bits> {
        (0..shots).map(|_| self.sample(rng)).collect()
    }

    /// Draws `shots` samples and tallies them, reusing one scratch row —
    /// the allocation-free path for bulk Clifford sampling (a fresh `Bits`
    /// is cloned only the first time an outcome is seen). The tally is
    /// keyed by interned ids ([`metrics::OutcomeCounts`]), so the per-shot
    /// cost is a hash probe instead of the ordered-map walk the former
    /// `BTreeMap` return type paid; outcomes emit in lexicographic order
    /// through [`metrics::OutcomeCounts::iter_sorted`].
    pub fn sample_counts(&self, shots: usize, rng: &mut impl Rng) -> metrics::OutcomeCounts {
        let mut counts = metrics::OutcomeCounts::new();
        self.sample_counts_into(shots, rng, &mut counts);
        counts
    }

    /// [`AffineSupport::sample_counts`] into a caller-provided tally —
    /// lets hot loops reuse one accumulator (and its table allocation)
    /// across many sampling calls. Counts accumulate on top of whatever
    /// the tally already holds; call [`metrics::OutcomeCounts::clear`]
    /// between independent records.
    pub fn sample_counts_into(
        &self,
        shots: usize,
        rng: &mut impl Rng,
        counts: &mut metrics::OutcomeCounts,
    ) {
        let mut scratch = self.base.clone();
        for _ in 0..shots {
            self.sample_into(&mut scratch, rng);
            counts.record(&scratch);
        }
    }

    /// Enumerates all `2^dim` support points.
    ///
    /// # Panics
    ///
    /// Panics if `dim > 24` (guard against accidental exponential blowup).
    pub fn enumerate(&self) -> Vec<Bits> {
        let r = self.dim();
        assert!(r <= 24, "support too large to enumerate (dim {r})");
        let mut out = Vec::with_capacity(1 << r);
        // Gray-code walk: flip one direction at a time.
        let mut current = self.base.clone();
        out.push(current.clone());
        for k in 1u64..(1 << r) {
            let flip = k.trailing_zeros() as usize;
            current.xor_assign(&self.directions[flip]);
            out.push(current.clone());
        }
        out
    }

    /// Membership test (reduces `x ⊕ base` against the directions).
    pub fn contains(&self, x: &Bits) -> bool {
        let n = self.base.len();
        if x.len() != n {
            return false;
        }
        let mut v = x.clone();
        v.xor_assign(&self.base);
        // Row-reduce the directions to echelon form, reducing v in lockstep.
        let mut basis: Vec<Bits> = self.directions.clone();
        let mut rank = 0;
        for col in 0..n {
            if let Some(p) = (rank..basis.len()).find(|&i| basis[i].get(col)) {
                basis.swap(rank, p);
                let pivot = basis[rank].clone();
                for (i, b) in basis.iter_mut().enumerate() {
                    if i != rank && b.get(col) {
                        b.xor_assign(&pivot);
                    }
                }
                if v.get(col) {
                    v.xor_assign(&pivot);
                }
                rank += 1;
            }
        }
        v.count_ones() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::Circuit;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(12345)
    }

    #[test]
    fn fresh_state_measures_zero() {
        let mut sim = TableauSim::new(3);
        let mut r = rng();
        for q in 0..3 {
            assert!(!sim.measure(q, &mut r));
        }
    }

    #[test]
    fn x_flips_measurement() {
        let mut sim = TableauSim::new(2);
        sim.apply(CliffordGate::X, &[Qubit(1)]);
        let mut r = rng();
        assert!(!sim.measure(0, &mut r));
        assert!(sim.measure(1, &mut r));
    }

    #[test]
    fn bell_state_correlations() {
        let mut r = rng();
        for _ in 0..20 {
            let mut sim = TableauSim::new(2);
            sim.apply(CliffordGate::H, &[Qubit(0)]);
            sim.apply(CliffordGate::Cx, &[Qubit(0), Qubit(1)]);
            let a = sim.measure(0, &mut r);
            let b = sim.measure(1, &mut r);
            assert_eq!(a, b, "Bell outcomes must correlate");
        }
    }

    #[test]
    fn repeated_measurement_is_stable() {
        let mut r = rng();
        let mut sim = TableauSim::new(1);
        sim.apply(CliffordGate::H, &[Qubit(0)]);
        let first = sim.measure(0, &mut r);
        for _ in 0..5 {
            assert_eq!(sim.measure(0, &mut r), first);
        }
    }

    #[test]
    fn bell_expectations() {
        let mut sim = TableauSim::new(2);
        sim.apply(CliffordGate::H, &[Qubit(0)]);
        sim.apply(CliffordGate::Cx, &[Qubit(0), Qubit(1)]);
        let exp = |s: &str| sim.expectation(&PauliString::parse(s).unwrap());
        assert_eq!(exp("XX"), 1);
        assert_eq!(exp("ZZ"), 1);
        assert_eq!(exp("YY"), -1);
        assert_eq!(exp("ZI"), 0);
        assert_eq!(exp("IX"), 0);
        assert_eq!(exp("II"), 1);
    }

    #[test]
    fn expectation_tracks_signs() {
        let mut sim = TableauSim::new(1);
        sim.apply(CliffordGate::X, &[Qubit(0)]);
        assert_eq!(sim.expectation(&PauliString::parse("Z").unwrap()), -1);
        let mut sim = TableauSim::new(1);
        sim.apply(CliffordGate::H, &[Qubit(0)]);
        assert_eq!(sim.expectation(&PauliString::parse("X").unwrap()), 1);
        sim.apply(CliffordGate::Z, &[Qubit(0)]);
        assert_eq!(sim.expectation(&PauliString::parse("X").unwrap()), -1);
        // |i⟩ state: S·H|0⟩ has ⟨Y⟩ = +1.
        let mut sim = TableauSim::new(1);
        sim.apply(CliffordGate::H, &[Qubit(0)]);
        sim.apply(CliffordGate::S, &[Qubit(0)]);
        assert_eq!(sim.expectation(&PauliString::parse("Y").unwrap()), 1);
        assert_eq!(sim.expectation(&PauliString::parse("X").unwrap()), 0);
    }

    #[test]
    fn support_of_bell_state() {
        let mut r = rng();
        let mut bell = Circuit::new(2);
        bell.h(0).cx(0, 1);
        let sim = TableauSim::run(&bell, &mut r).unwrap();
        let sup = sim.support();
        assert_eq!(sup.dim(), 1);
        let points: Vec<String> = sup.enumerate().iter().map(|b| b.to_string()).collect();
        assert!(points.contains(&"00".to_string()));
        assert!(points.contains(&"11".to_string()));
        assert!(sup.contains(&Bits::parse("11").unwrap()));
        assert!(!sup.contains(&Bits::parse("10").unwrap()));
    }

    #[test]
    fn support_of_ghz_and_sampling() {
        let mut r = rng();
        let mut ghz = Circuit::new(5);
        ghz.h(0);
        for q in 1..5 {
            ghz.cx(q - 1, q);
        }
        let sim = TableauSim::run(&ghz, &mut r).unwrap();
        let sup = sim.support();
        assert_eq!(sup.dim(), 1);
        let mut seen = std::collections::HashSet::new();
        for s in sup.sample_many(200, &mut r) {
            let t = s.to_string();
            assert!(t == "00000" || t == "11111", "bad GHZ sample {t}");
            seen.insert(t);
        }
        assert_eq!(seen.len(), 2, "both GHZ branches should appear");
    }

    #[test]
    fn deterministic_circuit_support_is_single_point() {
        let mut r = rng();
        let mut c = Circuit::new(3);
        c.x(0).x(2);
        let sim = TableauSim::run(&c, &mut r).unwrap();
        let sup = sim.support();
        assert_eq!(sup.dim(), 0);
        assert_eq!(sup.base().to_string(), "101");
    }

    #[test]
    fn support_with_sign_structure() {
        // |-> state: H then Z. Distribution over {0,1} uniform still, but
        // combined with CX correlations signs must place the base correctly.
        let mut r = rng();
        let mut c = Circuit::new(2);
        c.x(0).h(0).cx(0, 1).h(0); // builds a state with a deterministic bit
        let sim = TableauSim::run(&c, &mut r).unwrap();
        let sup = sim.support();
        for s in sup.enumerate() {
            // Cross-check every enumerated point against collapse-based
            // measurement by replaying measurement on a clone.
            let mut clone = TableauSim::run(&c, &mut r).unwrap();
            let m: Vec<bool> = (0..2).map(|q| clone.measure(q, &mut r)).collect();
            let measured = Bits::from_bools(&m);
            assert!(
                sup.contains(&measured),
                "measured {measured} not in support {s}"
            );
        }
    }

    #[test]
    fn stabilizers_of_fresh_state() {
        let sim = TableauSim::new(2);
        let stabs: Vec<String> = sim.stabilizers().iter().map(|s| s.to_string()).collect();
        assert_eq!(stabs, vec!["+ZI", "+IZ"]);
        let destabs: Vec<String> = sim.destabilizers().iter().map(|s| s.to_string()).collect();
        assert_eq!(destabs, vec!["+XI", "+IX"]);
    }

    #[test]
    fn tableau_invariants_after_random_circuit() {
        let mut r = rng();
        for seed in 0..5u64 {
            let mut c = Circuit::new(6);
            let mut gen = StdRng::seed_from_u64(seed);
            for _ in 0..60 {
                match gen.random_range(0..5) {
                    0 => {
                        c.h(gen.random_range(0..6));
                    }
                    1 => {
                        c.s(gen.random_range(0..6));
                    }
                    2 => {
                        c.x(gen.random_range(0..6));
                    }
                    _ => {
                        let a = gen.random_range(0..6);
                        let mut b = gen.random_range(0..6);
                        if a == b {
                            b = (b + 1) % 6;
                        }
                        c.cx(a, b);
                    }
                }
            }
            let sim = TableauSim::run(&c, &mut r).unwrap();
            let stabs = sim.stabilizers();
            let destabs = sim.destabilizers();
            for i in 0..6 {
                for j in 0..6 {
                    assert!(
                        stabs[i].commutes_with(&stabs[j]),
                        "stabilizers must commute"
                    );
                    let should_commute = i != j;
                    assert_eq!(
                        destabs[i].commutes_with(&stabs[j]),
                        should_commute,
                        "destab {i} vs stab {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn non_clifford_circuit_rejected() {
        let mut r = rng();
        let mut c = Circuit::new(1);
        c.t(0);
        let err = TableauSim::run(&c, &mut r).unwrap_err();
        assert_eq!(err.op_index, 0);
        assert!(err.to_string().contains('T'));
    }

    #[test]
    fn noise_trajectory_deterministic_extremes() {
        let mut r = rng();
        let mut c = Circuit::new(1);
        c.add_noise(NoiseChannel::BitFlip(1.0), &[0]);
        let mut sim = TableauSim::run(&c, &mut r).unwrap();
        assert!(sim.measure(0, &mut r), "p=1 bit flip must flip");
        let mut c0 = Circuit::new(1);
        c0.add_noise(NoiseChannel::BitFlip(0.0), &[0]);
        let mut sim = TableauSim::run(&c0, &mut r).unwrap();
        assert!(!sim.measure(0, &mut r));
    }

    #[test]
    fn sample_all_matches_exact_support() {
        let mut r = rng();
        let mut c = Circuit::new(4);
        c.h(0).h(2).cx(0, 1).cz(1, 2).s(3).cx(2, 3);
        let sim = TableauSim::run(&c, &mut r).unwrap();
        let sup = sim.support();
        let points: std::collections::HashSet<String> =
            sup.enumerate().iter().map(|b| b.to_string()).collect();
        for s in sim.sample_all(500, &mut r) {
            assert!(points.contains(&s.to_string()), "sample outside support");
        }
    }
}
