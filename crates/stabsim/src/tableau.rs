//! Aaronson–Gottesman tableau simulation over row-major bit-planes.
//!
//! # Layout
//!
//! The tableau stores each of its `2n+1` rows (destabilizers `0..n`,
//! stabilizers `n..2n`, one scratch row) as two bit-packed masks — the
//! row's X-mask and Z-mask, `⌈n/64⌉` words each, held at fixed strides in
//! two flat word arenas (one allocation per plane) — plus one sign bit
//! per row in a packed [`qcir::Bits`] sign plane. This is the CHP/Stim
//! *row-major* orientation: a whole generator is contiguous memory, so
//! the row operations that dominate measurement (`rowsum`, `copy_row`,
//! Gaussian elimination, support extraction) are straight word-level
//! loops instead of one-bit-per-qubit probes, and the strided per-qubit
//! column probes of gate application stay prefetchable. Gate application
//! pays for the orientation by touching one bit in every row (`O(n)` per
//! gate, like CHP) — a trade that wins as soon as a circuit measures,
//! samples, or takes expectations, which is every path SuperSim drives.
//!
//! # Word-parallel rowsum
//!
//! The rowsum (`row_h := row_i · row_h`) is a word-level XOR of the two
//! bit-planes fused with the standard bit-sliced phase trick
//! ([`qcir::pauli_mul_phase_words`]): instead of matching the per-qubit
//! Aaronson–Gottesman `g()` table, the kernel accumulates the exponent of
//! `i` in two carry-save bit-planes per word (a 2-bit counter mod 4 per
//! bit lane; anticommuting lanes add `±1`, where the `−1` predicate is
//! `newx ⊕ newz ⊕ (x1 & z2)`), and resolves the total with two popcounts
//! at the end. One `O(n/64)` pass replaces `n` table matches.
//!
//! Measurement drives rowsums in two batched shapes, each with its fixed
//! row hoisted out of the loop: the random-outcome collapse multiplies
//! one pivot row into every row carrying the measured qubit's X-bit, and
//! the deterministic branch accumulates a stabilizer product into the
//! scratch row. At `n ≤ 64` (one word per row) both run fully in
//! registers.
//!
//! The pre-transpose bit-at-a-time engine is frozen as
//! [`ReferenceTableauSim`](crate::ReferenceTableauSim); the two engines
//! are asserted bit-identical (same outcomes, same seeded-RNG
//! consumption) by the `tableau_engine_parity` suite and the `tableau`
//! series of `bench_json`.

use crate::packed::PackedPauli;
use crate::NonCliffordError;
use qcir::{pauli_mul_phase_words, Bits, Circuit, CliffordGate, NoiseChannel, OpKind, Qubit};
use rand::Rng;

/// GF(2) inner product of two equal-length word slices (XOR-fold, one
/// popcount).
#[inline]
fn slice_dot(a: &[u64], b: &[u64]) -> bool {
    let mut fold = 0u64;
    for (x, y) in a.iter().zip(b) {
        fold ^= x & y;
    }
    fold.count_ones() % 2 == 1
}

/// A stabilizer-circuit simulator in the style of Stim/CHP.
///
/// Rows are stored as packed bit-planes (see the module docs): gate
/// application flips one bit per row, while measurement's row sums,
/// Gaussian elimination, and support extraction run `O(n/64)` per row
/// pair. Measurement uses the Aaronson–Gottesman row-sum algorithm, and
/// bulk computational-basis sampling extracts the affine-subspace support
/// of the state once (`O(n³/64)`) and then draws shots in `O(n·r/64)`
/// each — the property that lets SuperSim sample 300-qubit Clifford
/// fragments in milliseconds.
///
/// ```
/// use stabsim::TableauSim;
/// use qcir::Circuit;
/// use rand::SeedableRng;
///
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let sim = TableauSim::run(&bell, &mut rng).unwrap();
/// for shot in sim.support().sample_many(20, &mut rng) {
///     assert!(shot.to_string() == "00" || shot.to_string() == "11");
/// }
/// ```
#[derive(Clone, Debug)]
pub struct TableauSim {
    n: usize,
    /// Words per row (`⌈n/64⌉`, min 1).
    stride: usize,
    /// X bit-plane arena: row `r` occupies words `r·stride ..
    /// (r+1)·stride`; rows `0..n` destabilizers, `n..2n` stabilizers, row
    /// `2n` scratch. One contiguous allocation keeps row scans and
    /// strided per-qubit probes cache-friendly.
    xs: Vec<u64>,
    /// Z bit-plane arena, same geometry.
    zs: Vec<u64>,
    /// Sign plane: bit `r` is row `r`'s `(-1)` phase.
    signs: Bits,
}

impl TableauSim {
    /// Creates the all-`|0⟩` state on `n` qubits.
    pub fn new(n: usize) -> Self {
        let rows = 2 * n + 1;
        let stride = n.div_ceil(64).max(1);
        let mut sim = TableauSim {
            n,
            stride,
            xs: vec![0u64; rows * stride],
            zs: vec![0u64; rows * stride],
            signs: Bits::zeros(rows),
        };
        for q in 0..n {
            sim.xs[q * stride + (q >> 6)] |= 1u64 << (q & 63); // destabilizer q = X_q
            sim.zs[(n + q) * stride + (q >> 6)] |= 1u64 << (q & 63); // stabilizer q = Z_q
        }
        sim
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The words of row `r` in the X-plane.
    #[inline]
    fn x_row(&self, r: usize) -> &[u64] {
        &self.xs[r * self.stride..(r + 1) * self.stride]
    }

    /// The words of row `r` in the Z-plane.
    #[inline]
    fn z_row(&self, r: usize) -> &[u64] {
        &self.zs[r * self.stride..(r + 1) * self.stride]
    }

    /// Runs a circuit from `|0…0⟩`.
    ///
    /// Noise channels are applied as a *single random Pauli trajectory*
    /// (adequate for one-shot evaluation; use
    /// [`FrameSim`](crate::FrameSim) for noisy multi-shot sampling).
    ///
    /// # Errors
    ///
    /// Returns [`NonCliffordError`] if the circuit contains a non-Clifford
    /// gate.
    pub fn run(circuit: &Circuit, rng: &mut impl Rng) -> Result<Self, NonCliffordError> {
        let mut sim = TableauSim::new(circuit.num_qubits());
        sim.run_ops(circuit, rng)?;
        Ok(sim)
    }

    /// Applies every operation of `circuit` to the current state.
    ///
    /// # Errors
    ///
    /// Returns [`NonCliffordError`] if the circuit contains a non-Clifford
    /// gate.
    pub fn run_ops(
        &mut self,
        circuit: &Circuit,
        rng: &mut impl Rng,
    ) -> Result<(), NonCliffordError> {
        for (i, op) in circuit.ops().iter().enumerate() {
            match &op.kind {
                OpKind::Gate(g) => {
                    let c = g.to_clifford().ok_or_else(|| NonCliffordError {
                        op_index: i,
                        name: g.name(),
                    })?;
                    self.apply(c, &op.qubits);
                }
                OpKind::Noise(ch) => self.apply_noise(*ch, &op.qubits, rng),
            }
        }
        Ok(())
    }

    /// Visits every generator row with a single-qubit Clifford action
    /// `(x, z) → (x', z', sign_flip)` over 0/1-valued words, monomorphized
    /// per gate.
    ///
    /// The arena offset and bit mask of qubit `q` are hoisted out of the
    /// row loop; the per-row update is branchless (unconditional
    /// XOR-with-difference stores, sign flips accumulated into one delta
    /// word per 64-row block), so data-dependent bits never cost a
    /// mispredict. The scratch row is skipped: its content is dead between
    /// deterministic measurements (always cleared before use).
    #[inline]
    fn for_each_row_1q<F>(&mut self, q: usize, f: F)
    where
        F: Fn(u64, u64) -> (u64, u64, u64),
    {
        assert!(q < self.n, "qubit out of range");
        let stride = self.stride;
        let sh = (q & 63) as u32;
        // Arena index of qubit q's word in row 0; advances by `stride`.
        let mut idx = q >> 6;
        let rows = 2 * self.n; // generators only; scratch row content is dead
        let mut r = 0;
        let mut sw = 0;
        while r < rows {
            let hi = (r + 64).min(rows);
            let mut delta = 0u64;
            let mut bit = 1u64;
            while r < hi {
                let xw = self.xs[idx];
                let zw = self.zs[idx];
                let x = (xw >> sh) & 1;
                let z = (zw >> sh) & 1;
                let (nx, nz, s) = f(x, z);
                self.xs[idx] = xw ^ ((x ^ nx) << sh);
                self.zs[idx] = zw ^ ((z ^ nz) << sh);
                delta |= s * bit;
                bit <<= 1;
                idx += stride;
                r += 1;
            }
            self.signs.xor_word(sw, delta);
            sw += 1;
        }
    }

    /// Two-qubit analogue of [`TableauSim::for_each_row_1q`]:
    /// `(xa, za, xb, zb) → (xa', za', xb', zb', sign_flip)`.
    #[inline]
    fn for_each_row_2q<F>(&mut self, a: usize, b: usize, f: F)
    where
        F: Fn(u64, u64, u64, u64) -> (u64, u64, u64, u64, u64),
    {
        assert!(a < self.n && b < self.n, "qubit out of range");
        assert_ne!(a, b, "need distinct qubits");
        let stride = self.stride;
        let sha = (a & 63) as u32;
        let shb = (b & 63) as u32;
        let mut ia = a >> 6;
        let mut ib = b >> 6;
        let rows = 2 * self.n; // generators only; scratch row content is dead
        let mut r = 0;
        let mut sw = 0;
        while r < rows {
            let hi = (r + 64).min(rows);
            let mut delta = 0u64;
            let mut bit = 1u64;
            while r < hi {
                let xaw = self.xs[ia];
                let zaw = self.zs[ia];
                let xbw = self.xs[ib];
                let zbw = self.zs[ib];
                let xa = (xaw >> sha) & 1;
                let za = (zaw >> sha) & 1;
                let xb = (xbw >> shb) & 1;
                let zb = (zbw >> shb) & 1;
                let (nxa, nza, nxb, nzb, s) = f(xa, za, xb, zb);
                self.xs[ia] = xaw ^ ((xa ^ nxa) << sha);
                self.zs[ia] = zaw ^ ((za ^ nza) << sha);
                // `a` and `b` may share an arena word (same row, same
                // 64-qubit block): reload so the write above is seen.
                let xbw = self.xs[ib];
                let zbw = self.zs[ib];
                self.xs[ib] = xbw ^ ((xb ^ nxb) << shb);
                self.zs[ib] = zbw ^ ((zb ^ nzb) << shb);
                delta |= s * bit;
                bit <<= 1;
                ia += stride;
                ib += stride;
                r += 1;
            }
            self.signs.xor_word(sw, delta);
            sw += 1;
        }
    }

    /// Applies a Clifford gate.
    ///
    /// Row-major orientation: each gate reads/flips the gate qubits' bits
    /// in every row and conditionally flips the row's sign — `O(n)` per
    /// gate (the CHP trade for word-parallel row operations).
    ///
    /// # Panics
    ///
    /// Panics if the qubit count does not match the gate arity or a qubit is
    /// out of range.
    pub fn apply(&mut self, gate: CliffordGate, qubits: &[Qubit]) {
        assert_eq!(qubits.len(), gate.arity(), "arity mismatch");
        use CliffordGate as G;
        match gate {
            G::I => {}
            G::X => self.for_each_row_1q(qubits[0].index(), |x, z| (x, z, z)),
            G::Y => self.for_each_row_1q(qubits[0].index(), |x, z| (x, z, x ^ z)),
            G::Z => self.for_each_row_1q(qubits[0].index(), |x, z| (x, z, x)),
            G::H => self.for_each_row_1q(qubits[0].index(), |x, z| (z, x, x & z)),
            G::S => self.for_each_row_1q(qubits[0].index(), |x, z| (x, z ^ x, x & z)),
            G::Sdg => self.for_each_row_1q(qubits[0].index(), |x, z| (x, z ^ x, x & (z ^ 1))),
            G::SqrtX => self.for_each_row_1q(qubits[0].index(), |x, z| (x ^ z, z, z & (x ^ 1))),
            G::SqrtXdg => self.for_each_row_1q(qubits[0].index(), |x, z| (x ^ z, z, z & x)),
            G::SqrtY => self.for_each_row_1q(qubits[0].index(), |x, z| (z, x, x & (z ^ 1))),
            G::SqrtYdg => self.for_each_row_1q(qubits[0].index(), |x, z| (z, x, z & (x ^ 1))),
            G::Cx => {
                self.for_each_row_2q(qubits[0].index(), qubits[1].index(), |xc, zc, xt, zt| {
                    (xc, zc ^ zt, xt ^ xc, zt, xc & zt & (xt ^ zc ^ 1))
                })
            }
            G::Cz => {
                self.for_each_row_2q(qubits[0].index(), qubits[1].index(), |xa, za, xb, zb| {
                    (xa, za ^ xb, xb, zb ^ xa, xa & xb & (za ^ zb))
                })
            }
            G::Cy => {
                self.apply(G::Sdg, &[qubits[1]]);
                self.apply(G::Cx, qubits);
                self.apply(G::S, &[qubits[1]]);
            }
            G::Swap => {
                self.for_each_row_2q(qubits[0].index(), qubits[1].index(), |xa, za, xb, zb| {
                    (xb, zb, xa, za, 0)
                })
            }
        }
    }

    /// Applies a Pauli noise channel as one random trajectory.
    pub fn apply_noise(&mut self, channel: NoiseChannel, qubits: &[Qubit], rng: &mut impl Rng) {
        use CliffordGate as G;
        match channel {
            NoiseChannel::BitFlip(p) => {
                if rng.random::<f64>() < p {
                    self.apply(G::X, qubits);
                }
            }
            NoiseChannel::PhaseFlip(p) => {
                if rng.random::<f64>() < p {
                    self.apply(G::Z, qubits);
                }
            }
            NoiseChannel::YFlip(p) => {
                if rng.random::<f64>() < p {
                    self.apply(G::Y, qubits);
                }
            }
            NoiseChannel::Depolarize1(p) => {
                if rng.random::<f64>() < p {
                    let g = [G::X, G::Y, G::Z][rng.random_range(0..3)];
                    self.apply(g, qubits);
                }
            }
            NoiseChannel::Depolarize2(p) => {
                if rng.random::<f64>() < p {
                    let k = rng.random_range(1..16u8);
                    for (bit_pos, q) in [(0u8, qubits[0]), (2u8, qubits[1])] {
                        match (k >> bit_pos) & 0b11 {
                            0b01 => self.apply(G::X, &[q]),
                            0b10 => self.apply(G::Z, &[q]),
                            0b11 => self.apply(G::Y, &[q]),
                            _ => {}
                        }
                    }
                }
            }
        }
    }

    /// The fused hot loop of the random-outcome collapse: multiplies
    /// pivot row `p` into every other row whose X-bit at `(wq, m)` is set
    /// (skipping the pivot's destabilizer partner `p − n`), i.e. a batch
    /// of `rowsum(r, p)` with the pivot's bit-planes and sign hoisted out
    /// of the loop.
    fn collapse_rowsums(&mut self, p: usize, wq: usize, m: u64) {
        let stride = self.stride;
        let n = self.n;
        let sp = self.signs.get(p) as u32;
        // Rows below the pivot borrow the pivot from the upper half…
        {
            let (xlo, xhi) = self.xs.split_at_mut(p * stride);
            let (zlo, zhi) = self.zs.split_at_mut(p * stride);
            let xp = &xhi[..stride];
            let zp = &zhi[..stride];
            for r in 0..p {
                if r == p - n {
                    continue;
                }
                let xr = &mut xlo[r * stride..(r + 1) * stride];
                if xr[wq] & m == 0 {
                    continue;
                }
                let zr = &mut zlo[r * stride..(r + 1) * stride];
                let g = pauli_mul_phase_words(xp, zp, xr, zr) as u32;
                let ph = (2 * (self.signs.get(r) as u32 + sp) + g) % 4;
                debug_assert!(ph == 0 || ph == 2, "rowsum produced imaginary phase");
                self.signs.set(r, ph == 2);
            }
        }
        // …and rows above it borrow it from the lower half.
        let (xlo, xhi) = self.xs.split_at_mut((p + 1) * stride);
        let (zlo, zhi) = self.zs.split_at_mut((p + 1) * stride);
        let xp = &xlo[p * stride..];
        let zp = &zlo[p * stride..];
        for r in p + 1..2 * n {
            let off = (r - p - 1) * stride;
            let xr = &mut xhi[off..off + stride];
            if xr[wq] & m == 0 {
                continue;
            }
            let zr = &mut zhi[off..off + stride];
            let g = pauli_mul_phase_words(xp, zp, xr, zr) as u32;
            let ph = (2 * (self.signs.get(r) as u32 + sp) + g) % 4;
            debug_assert!(ph == 0 || ph == 2, "rowsum produced imaginary phase");
            self.signs.set(r, ph == 2);
        }
    }

    /// Single-word specialization of [`TableauSim::collapse_rowsums`] for
    /// `stride == 1` (n ≤ 64): the pivot's planes live in registers, each
    /// row product is ~a dozen ALU ops (the same carry-save phase formula
    /// as [`qcir::pauli_mul_phase_words`], collapsed to one word where
    /// `cnt1 = anti`, `cnt2 = minus`), and no borrow splitting is needed.
    fn collapse_rowsums_w1(&mut self, p: usize, m: u64) {
        let n = self.n;
        let x1 = self.xs[p];
        let z1 = self.zs[p];
        let sp = self.signs.get(p) as u32;
        let skip = p - n;
        for r in 0..2 * n {
            let x2 = self.xs[r];
            if x2 & m == 0 || r == p || r == skip {
                continue;
            }
            let z2 = self.zs[r];
            let newx = x1 ^ x2;
            let newz = z1 ^ z2;
            let x1z2 = x1 & z2;
            let anti = (z1 & x2) ^ x1z2;
            let minus = (newx ^ newz ^ x1z2) & anti;
            let g = anti.count_ones() + 2 * minus.count_ones();
            let ph = (2 * (self.signs.get(r) as u32 + sp) + g) % 4;
            debug_assert!(ph == 0 || ph == 2, "rowsum produced imaginary phase");
            self.xs[r] = newx;
            self.zs[r] = newz;
            self.signs.set(r, ph == 2);
        }
    }

    /// The fused hot loop of the deterministic-outcome branch: clears the
    /// scratch row and accumulates `rowsum(scratch, n + i)` for every
    /// destabilizer `i` whose X-bit at `(wq, m)` is set, with the scratch
    /// bit-planes and running sign held out of the loop. Returns the
    /// accumulated sign — the measurement outcome.
    fn scratch_accumulate(&mut self, wq: usize, m: u64) -> bool {
        let stride = self.stride;
        let n = self.n;
        self.clear_row(2 * n);
        let (xlo, xhi) = self.xs.split_at_mut(2 * n * stride);
        let (zlo, zhi) = self.zs.split_at_mut(2 * n * stride);
        let xscratch = &mut xhi[..stride];
        let zscratch = &mut zhi[..stride];
        let mut sign = 0u32;
        for i in 0..n {
            if xlo[i * stride + wq] & m == 0 {
                continue;
            }
            let xi = &xlo[(n + i) * stride..(n + i + 1) * stride];
            let zi = &zlo[(n + i) * stride..(n + i + 1) * stride];
            let g = pauli_mul_phase_words(xi, zi, xscratch, zscratch) as u32;
            let ph = (2 * (sign + self.signs.get(n + i) as u32) + g) % 4;
            debug_assert!(ph == 0 || ph == 2, "rowsum produced imaginary phase");
            sign = (ph == 2) as u32;
        }
        self.signs.set(2 * n, sign == 1);
        sign == 1
    }

    /// Single-word specialization of [`TableauSim::scratch_accumulate`]
    /// for `stride == 1`: the accumulator never leaves registers — the
    /// in-memory scratch row is not touched at all.
    fn scratch_accumulate_w1(&mut self, m: u64) -> bool {
        let n = self.n;
        let mut xacc = 0u64;
        let mut zacc = 0u64;
        let mut sign = 0u32;
        for i in 0..n {
            if self.xs[i] & m == 0 {
                continue;
            }
            // rowsum(scratch, n+i): left = stabilizer row, right = acc.
            let x1 = self.xs[n + i];
            let z1 = self.zs[n + i];
            let newx = x1 ^ xacc;
            let newz = z1 ^ zacc;
            let x1z2 = x1 & zacc;
            let anti = (z1 & xacc) ^ x1z2;
            let minus = (newx ^ newz ^ x1z2) & anti;
            let g = anti.count_ones() + 2 * minus.count_ones();
            let ph = (2 * (sign + self.signs.get(n + i) as u32) + g) % 4;
            debug_assert!(ph == 0 || ph == 2, "rowsum produced imaginary phase");
            xacc = newx;
            zacc = newz;
            sign = (ph == 2) as u32;
        }
        sign == 1
    }

    fn copy_row(&mut self, src: usize, dst: usize) {
        let stride = self.stride;
        self.xs
            .copy_within(src * stride..(src + 1) * stride, dst * stride);
        self.zs
            .copy_within(src * stride..(src + 1) * stride, dst * stride);
        let s = self.signs.get(src);
        self.signs.set(dst, s);
    }

    fn clear_row(&mut self, row: usize) {
        let stride = self.stride;
        self.xs[row * stride..(row + 1) * stride].fill(0);
        self.zs[row * stride..(row + 1) * stride].fill(0);
        self.signs.set(row, false);
    }

    /// Measures qubit `q` in the computational basis, collapsing the state.
    ///
    /// Returns the outcome bit. Random outcomes draw from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn measure(&mut self, q: usize, rng: &mut impl Rng) -> bool {
        assert!(q < self.n, "qubit out of range");
        let n = self.n;
        // Hoisted arena offset/mask of qubit q. The row scans walk the
        // X-plane at `stride`-word steps through an iterator, so each
        // probe is a bounds-check-free strided load.
        let stride = self.stride;
        let wq = q >> 6;
        let m = 1u64 << (q & 63);
        let pivot = self.xs[n * stride + wq..]
            .iter()
            .step_by(stride)
            .take(n)
            .position(|&w| w & m != 0);
        if let Some(p) = pivot.map(|i| n + i) {
            // Random outcome. Row p's own destabilizer partner (row p−n)
            // anticommutes with row p, so multiplying it would produce an
            // imaginary phase — but it is overwritten below anyway, so it
            // is skipped inside the fused loop.
            if stride == 1 {
                self.collapse_rowsums_w1(p, m);
            } else {
                self.collapse_rowsums(p, wq, m);
            }
            self.copy_row(p, p - n);
            self.clear_row(p);
            let outcome: bool = rng.random();
            self.zs[p * stride + wq] |= m;
            self.signs.set(p, outcome);
            outcome
        } else if stride == 1 {
            // Deterministic outcome, single-word fast path: the stabilizer
            // product accumulates entirely in registers.
            self.scratch_accumulate_w1(m)
        } else {
            // Deterministic outcome: accumulate the stabilizer product on
            // the scratch row.
            self.scratch_accumulate(wq, m)
        }
    }

    /// Extracts row `row` of the tableau as a packed Pauli.
    fn row_pauli(&self, row: usize) -> PackedPauli {
        let mut out = PackedPauli::identity(self.n);
        self.row_pauli_into(row, &mut out);
        out
    }

    /// [`TableauSim::row_pauli`] into a caller-provided Pauli, reusing its
    /// bit-plane allocations — the scratch-friendly path for loops that
    /// extract many rows.
    ///
    /// # Panics
    ///
    /// Panics if `out` is not `num_qubits` wide.
    fn row_pauli_into(&self, row: usize, out: &mut PackedPauli) {
        out.x.copy_from_words(self.x_row(row));
        out.z.copy_from_words(self.z_row(row));
        // Y = i·X·Z per (1,1) qubit: the i-exponent is the Y count mod 4.
        let ys = out.x.and_count_ones(&out.z) % 4;
        out.k = ((2 * self.signs.get(row) as u32 + ys) % 4) as u8;
    }

    /// Returns `true` when row `row` anticommutes with `p`.
    ///
    /// Two GF(2) inner products straight off the bit-planes — no row
    /// extraction, no allocation.
    #[inline]
    fn row_anticommutes(&self, row: usize, p: &PackedPauli) -> bool {
        slice_dot(self.x_row(row), p.z.as_words()) ^ slice_dot(self.z_row(row), p.x.as_words())
    }

    /// The current stabilizer generators as phase-tracked Pauli strings.
    pub fn stabilizers(&self) -> Vec<qcir::PauliString> {
        (self.n..2 * self.n)
            .map(|r| self.row_pauli(r).to_string_form())
            .collect()
    }

    /// The current destabilizer generators.
    pub fn destabilizers(&self) -> Vec<qcir::PauliString> {
        (0..self.n)
            .map(|r| self.row_pauli(r).to_string_form())
            .collect()
    }

    /// Exact expectation value `⟨ψ|P|ψ⟩ ∈ {-1, 0, +1}` of a Pauli string.
    ///
    /// This is the zero-shot Clifford-specific optimization of the paper's
    /// §IX: a Pauli either anticommutes with some stabilizer (expectation 0)
    /// or is ± a product of stabilizer generators, whose sign is computed
    /// exactly from the tableau.
    ///
    /// # Panics
    ///
    /// Panics if `p.len() != num_qubits` or the string carries an imaginary
    /// phase (non-Hermitian operator).
    pub fn expectation(&self, p: &qcir::PauliString) -> i32 {
        assert_eq!(p.len(), self.n, "operator width mismatch");
        assert!(p.phase() % 2 == 0, "non-Hermitian Pauli operator");
        let target = PackedPauli::from_string(p);
        // ⟨P⟩ = 0 unless P commutes with every stabilizer generator.
        for r in self.n..2 * self.n {
            if self.row_anticommutes(r, &target) {
                return 0;
            }
        }
        // P = ± Π of the stabilizers paired with anticommuting destabilizers.
        // One scratch row serves every extraction.
        let mut product = PackedPauli::identity(self.n);
        let mut scratch = PackedPauli::identity(self.n);
        for i in 0..self.n {
            if self.row_anticommutes(i, &target) {
                self.row_pauli_into(self.n + i, &mut scratch);
                product.mul_assign(&scratch);
            }
        }
        debug_assert_eq!(product.x, target.x, "membership reconstruction failed");
        debug_assert_eq!(product.z, target.z, "membership reconstruction failed");
        let k_diff = (4 + product.k - target.k) % 4;
        debug_assert!(k_diff % 2 == 0);
        if k_diff == 0 {
            1
        } else {
            -1
        }
    }

    /// The affine-subspace support of the computational-basis measurement
    /// distribution.
    ///
    /// The distribution of measuring all qubits of a stabilizer state is
    /// uniform over `base ⊕ span(directions)`; this performs the one-time
    /// `O(n³/64)` Gaussian elimination that makes bulk sampling cheap. In
    /// the row-major layout each stabilizer row is extracted with two word
    /// copies, and the elimination's row products run on the packed
    /// kernels; the extracted bit-planes are moved (not recloned) into the
    /// returned support.
    pub fn support(&self) -> AffineSupport {
        let n = self.n;
        let rows: Vec<PackedPauli> = (n..2 * n).map(|r| self.row_pauli(r)).collect();
        support_from_packed_rows(n, rows)
    }

    /// Convenience: samples `shots` full computational-basis measurements
    /// without collapsing the state.
    pub fn sample_all(&self, shots: usize, rng: &mut impl Rng) -> Vec<Bits> {
        self.support().sample_many(shots, rng)
    }
}

/// Gaussian-eliminates `n` extracted stabilizer generators into the
/// affine support of the measurement distribution.
///
/// Shared by every tableau engine so the emitted `base`/`directions`
/// (and therefore the per-shot RNG consumption of sampling) are
/// bit-identical whichever engine extracted the rows: the elimination
/// order, pivot choice, and free-variable convention live here, once.
pub(crate) fn support_from_packed_rows(n: usize, mut rows: Vec<PackedPauli>) -> AffineSupport {
    // Echelon form on the X-block.
    let mut rank = 0;
    for col in 0..n {
        if let Some(pivot) = (rank..n).find(|&i| rows[i].x.get(col)) {
            rows.swap(rank, pivot);
            let pivot_row = rows[rank].clone();
            for (i, row) in rows.iter_mut().enumerate() {
                if i != rank && row.x.get(col) {
                    row.mul_assign(&pivot_row);
                }
            }
            rank += 1;
        }
    }

    // Move the bit-planes out of the eliminated rows: the first `rank`
    // X-masks become the directions, the rest are pure-Z constraints.
    let mut rows_iter = rows.into_iter();
    let directions: Vec<Bits> = rows_iter.by_ref().take(rank).map(|r| r.x).collect();

    // Remaining rows are pure-Z stabilizers: (-1)^{k/2} Z^z fixes
    // z·x ≡ k/2 (mod 2) on the support.
    let mut cons: Vec<(Bits, bool)> = rows_iter
        .map(|r| {
            debug_assert!(r.is_z_type());
            debug_assert!(r.k % 2 == 0);
            (r.z, r.k % 4 == 2)
        })
        .collect();

    // Solve the linear system for a particular solution (free vars = 0).
    let mut base = Bits::zeros(n);
    let mut row_i = 0;
    let mut pivots: Vec<(usize, usize)> = Vec::new(); // (row, col)
    for col in 0..n {
        if row_i >= cons.len() {
            break;
        }
        if let Some(p) = (row_i..cons.len()).find(|&i| cons[i].0.get(col)) {
            cons.swap(row_i, p);
            let (pivot_bits, pivot_rhs) = cons[row_i].clone();
            for (i, (bits, rhs)) in cons.iter_mut().enumerate() {
                if i != row_i && bits.get(col) {
                    bits.xor_assign(&pivot_bits);
                    *rhs ^= pivot_rhs;
                }
            }
            pivots.push((row_i, col));
            row_i += 1;
        }
    }
    for &(r, col) in &pivots {
        // In reduced echelon form with free variables set to zero the
        // pivot variable equals the right-hand side.
        base.set(col, cons[r].1);
    }

    AffineSupport { base, directions }
}

/// The support of a stabilizer state's computational-basis distribution:
/// the uniform distribution over `base ⊕ span(directions)`.
#[derive(Clone, Debug)]
pub struct AffineSupport {
    base: Bits,
    directions: Vec<Bits>,
}

impl AffineSupport {
    /// Constructs a support from a base point and (independent) directions.
    pub fn new(base: Bits, directions: Vec<Bits>) -> Self {
        AffineSupport { base, directions }
    }

    /// The dimension `r` of the support subspace (the distribution is
    /// uniform over `2^r` points).
    pub fn dim(&self) -> usize {
        self.directions.len()
    }

    /// The base point.
    pub fn base(&self) -> &Bits {
        &self.base
    }

    /// The subspace directions.
    pub fn directions(&self) -> &[Bits] {
        &self.directions
    }

    /// XORs a random subset of the directions into `x`, drawing the
    /// selection mask 64 directions at a time (one RNG call per block
    /// instead of one per direction).
    fn xor_random_directions(&self, x: &mut Bits, rng: &mut impl Rng) {
        for block in self.directions.chunks(64) {
            let mut mask: u64 = rng.random();
            for d in block {
                if mask & 1 == 1 {
                    x.xor_assign(d);
                }
                mask >>= 1;
            }
        }
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut impl Rng) -> Bits {
        let mut x = self.base.clone();
        self.xor_random_directions(&mut x, rng);
        x
    }

    /// Draws one sample into an existing row, reusing its allocation.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the support width.
    pub fn sample_into(&self, out: &mut Bits, rng: &mut impl Rng) {
        out.copy_from(&self.base);
        self.xor_random_directions(out, rng);
    }

    /// Draws `shots` samples. Each returned row is necessarily a fresh
    /// allocation; use [`AffineSupport::sample_counts`] for the
    /// scratch-reusing bulk path.
    pub fn sample_many(&self, shots: usize, rng: &mut impl Rng) -> Vec<Bits> {
        (0..shots).map(|_| self.sample(rng)).collect()
    }

    /// Draws `shots` samples and tallies them, reusing one scratch row —
    /// the allocation-free path for bulk Clifford sampling (a fresh `Bits`
    /// is cloned only the first time an outcome is seen). The tally is
    /// keyed by interned ids ([`metrics::OutcomeCounts`]), so the per-shot
    /// cost is a hash probe instead of the ordered-map walk the former
    /// `BTreeMap` return type paid; outcomes emit in lexicographic order
    /// through [`metrics::OutcomeCounts::iter_sorted`].
    pub fn sample_counts(&self, shots: usize, rng: &mut impl Rng) -> metrics::OutcomeCounts {
        let mut counts = metrics::OutcomeCounts::new();
        self.sample_counts_into(shots, rng, &mut counts);
        counts
    }

    /// [`AffineSupport::sample_counts`] into a caller-provided tally —
    /// lets hot loops reuse one accumulator (and its table allocation)
    /// across many sampling calls. Counts accumulate on top of whatever
    /// the tally already holds; call [`metrics::OutcomeCounts::clear`]
    /// between independent records.
    pub fn sample_counts_into(
        &self,
        shots: usize,
        rng: &mut impl Rng,
        counts: &mut metrics::OutcomeCounts,
    ) {
        let mut scratch = self.base.clone();
        self.sample_counts_scratch(shots, rng, counts, &mut scratch);
    }

    /// [`AffineSupport::sample_counts_into`] with a caller-provided
    /// scratch row as well — the fully allocation-free bulk path for
    /// workers that sample many supports in a loop. The scratch row is
    /// re-shaped (one allocation) only when the support width changes
    /// between calls.
    ///
    /// Small supports (single-word outcomes, `dim ≤ 10`) take a table
    /// fast path: the `2^dim` support points are precomputed once and
    /// each shot becomes one RNG draw plus an indexed tally bump. The
    /// per-shot RNG consumption (one `u64` for `1..=64` directions, none
    /// for zero) and the resulting per-outcome counts are exactly those
    /// of the general loop, so sampling streams stay bit-identical.
    pub fn sample_counts_scratch(
        &self,
        shots: usize,
        rng: &mut impl Rng,
        counts: &mut metrics::OutcomeCounts,
        scratch: &mut Bits,
    ) {
        self.sample_counts_scratch_impl(shots, rng, counts, scratch, true);
    }

    /// [`AffineSupport::sample_counts_scratch`] with the table fast path
    /// disabled: every shot walks the per-direction XOR loop, exactly as
    /// the pre-optimization implementation did. RNG draw order and the
    /// resulting tally are identical to the fast path (that equivalence
    /// is what the fast path is validated against), so this exists purely
    /// as the frozen performance baseline — `TableauEngine::Reference`
    /// routes through it so end-to-end benchmarks compare the optimized
    /// Clifford pipeline against the real pre-optimization cost.
    pub fn sample_counts_scratch_frozen(
        &self,
        shots: usize,
        rng: &mut impl Rng,
        counts: &mut metrics::OutcomeCounts,
        scratch: &mut Bits,
    ) {
        self.sample_counts_scratch_impl(shots, rng, counts, scratch, false);
    }

    fn sample_counts_scratch_impl(
        &self,
        shots: usize,
        rng: &mut impl Rng,
        counts: &mut metrics::OutcomeCounts,
        scratch: &mut Bits,
        table_path: bool,
    ) {
        let dim = self.directions.len();
        let width = self.base.len();
        if scratch.len() != width {
            *scratch = self.base.clone();
        }
        const MAX_TABLE_DIM: usize = 10;
        if table_path && (1..=64).contains(&width) && dim <= MAX_TABLE_DIM {
            // table[idx] = base ⊕ (directions selected by idx's bits) —
            // bit i of idx ↔ direction i, matching the low-bits-first
            // selection of `xor_random_directions`.
            let mut table = vec![0u64; 1 << dim];
            table[0] = self.base.as_words()[0];
            for (i, d) in self.directions.iter().enumerate() {
                let dw = d.as_words()[0];
                let (lo, hi) = table.split_at_mut(1 << i);
                for (t, &s) in hi[..1 << i].iter_mut().zip(lo.iter()) {
                    *t = s ^ dw;
                }
            }
            let mut tally = vec![0u64; 1 << dim];
            if dim == 0 {
                tally[0] = shots as u64;
            } else {
                let m = (u64::MAX) >> (64 - dim);
                for _ in 0..shots {
                    let mask: u64 = rng.random();
                    tally[(mask & m) as usize] += 1;
                }
            }
            for (idx, &n) in tally.iter().enumerate() {
                if n > 0 {
                    scratch.copy_from_words(&table[idx..idx + 1]);
                    counts.record_n(scratch, n);
                }
            }
        } else {
            for _ in 0..shots {
                self.sample_into(scratch, rng);
                counts.record(scratch);
            }
        }
    }

    /// Enumerates all `2^dim` support points.
    ///
    /// # Panics
    ///
    /// Panics if `dim > 24` (guard against accidental exponential blowup).
    pub fn enumerate(&self) -> Vec<Bits> {
        let r = self.dim();
        assert!(r <= 24, "support too large to enumerate (dim {r})");
        let mut out = Vec::with_capacity(1 << r);
        // Gray-code walk: flip one direction at a time.
        let mut current = self.base.clone();
        out.push(current.clone());
        for k in 1u64..(1 << r) {
            let flip = k.trailing_zeros() as usize;
            current.xor_assign(&self.directions[flip]);
            out.push(current.clone());
        }
        out
    }

    /// Membership test (reduces `x ⊕ base` against the directions).
    pub fn contains(&self, x: &Bits) -> bool {
        let n = self.base.len();
        if x.len() != n {
            return false;
        }
        let mut v = x.clone();
        v.xor_assign(&self.base);
        // Row-reduce the directions to echelon form, reducing v in lockstep.
        let mut basis: Vec<Bits> = self.directions.clone();
        let mut rank = 0;
        for col in 0..n {
            if let Some(p) = (rank..basis.len()).find(|&i| basis[i].get(col)) {
                basis.swap(rank, p);
                let pivot = basis[rank].clone();
                for (i, b) in basis.iter_mut().enumerate() {
                    if i != rank && b.get(col) {
                        b.xor_assign(&pivot);
                    }
                }
                if v.get(col) {
                    v.xor_assign(&pivot);
                }
                rank += 1;
            }
        }
        v.is_zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::{Circuit, PauliString};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(12345)
    }

    #[test]
    fn fresh_state_measures_zero() {
        let mut sim = TableauSim::new(3);
        let mut r = rng();
        for q in 0..3 {
            assert!(!sim.measure(q, &mut r));
        }
    }

    #[test]
    fn x_flips_measurement() {
        let mut sim = TableauSim::new(2);
        sim.apply(CliffordGate::X, &[Qubit(1)]);
        let mut r = rng();
        assert!(!sim.measure(0, &mut r));
        assert!(sim.measure(1, &mut r));
    }

    #[test]
    fn bell_state_correlations() {
        let mut r = rng();
        for _ in 0..20 {
            let mut sim = TableauSim::new(2);
            sim.apply(CliffordGate::H, &[Qubit(0)]);
            sim.apply(CliffordGate::Cx, &[Qubit(0), Qubit(1)]);
            let a = sim.measure(0, &mut r);
            let b = sim.measure(1, &mut r);
            assert_eq!(a, b, "Bell outcomes must correlate");
        }
    }

    #[test]
    fn repeated_measurement_is_stable() {
        let mut r = rng();
        let mut sim = TableauSim::new(1);
        sim.apply(CliffordGate::H, &[Qubit(0)]);
        let first = sim.measure(0, &mut r);
        for _ in 0..5 {
            assert_eq!(sim.measure(0, &mut r), first);
        }
    }

    #[test]
    fn bell_expectations() {
        let mut sim = TableauSim::new(2);
        sim.apply(CliffordGate::H, &[Qubit(0)]);
        sim.apply(CliffordGate::Cx, &[Qubit(0), Qubit(1)]);
        let exp = |s: &str| sim.expectation(&PauliString::parse(s).unwrap());
        assert_eq!(exp("XX"), 1);
        assert_eq!(exp("ZZ"), 1);
        assert_eq!(exp("YY"), -1);
        assert_eq!(exp("ZI"), 0);
        assert_eq!(exp("IX"), 0);
        assert_eq!(exp("II"), 1);
    }

    #[test]
    fn expectation_tracks_signs() {
        let mut sim = TableauSim::new(1);
        sim.apply(CliffordGate::X, &[Qubit(0)]);
        assert_eq!(sim.expectation(&PauliString::parse("Z").unwrap()), -1);
        let mut sim = TableauSim::new(1);
        sim.apply(CliffordGate::H, &[Qubit(0)]);
        assert_eq!(sim.expectation(&PauliString::parse("X").unwrap()), 1);
        sim.apply(CliffordGate::Z, &[Qubit(0)]);
        assert_eq!(sim.expectation(&PauliString::parse("X").unwrap()), -1);
        // |i⟩ state: S·H|0⟩ has ⟨Y⟩ = +1.
        let mut sim = TableauSim::new(1);
        sim.apply(CliffordGate::H, &[Qubit(0)]);
        sim.apply(CliffordGate::S, &[Qubit(0)]);
        assert_eq!(sim.expectation(&PauliString::parse("Y").unwrap()), 1);
        assert_eq!(sim.expectation(&PauliString::parse("X").unwrap()), 0);
    }

    #[test]
    fn support_of_bell_state() {
        let mut r = rng();
        let mut bell = Circuit::new(2);
        bell.h(0).cx(0, 1);
        let sim = TableauSim::run(&bell, &mut r).unwrap();
        let sup = sim.support();
        assert_eq!(sup.dim(), 1);
        let points: Vec<String> = sup.enumerate().iter().map(|b| b.to_string()).collect();
        assert!(points.contains(&"00".to_string()));
        assert!(points.contains(&"11".to_string()));
        assert!(sup.contains(&Bits::parse("11").unwrap()));
        assert!(!sup.contains(&Bits::parse("10").unwrap()));
    }

    #[test]
    fn support_of_ghz_and_sampling() {
        let mut r = rng();
        let mut ghz = Circuit::new(5);
        ghz.h(0);
        for q in 1..5 {
            ghz.cx(q - 1, q);
        }
        let sim = TableauSim::run(&ghz, &mut r).unwrap();
        let sup = sim.support();
        assert_eq!(sup.dim(), 1);
        let mut seen = std::collections::HashSet::new();
        for s in sup.sample_many(200, &mut r) {
            let t = s.to_string();
            assert!(t == "00000" || t == "11111", "bad GHZ sample {t}");
            seen.insert(t);
        }
        assert_eq!(seen.len(), 2, "both GHZ branches should appear");
    }

    #[test]
    fn deterministic_circuit_support_is_single_point() {
        let mut r = rng();
        let mut c = Circuit::new(3);
        c.x(0).x(2);
        let sim = TableauSim::run(&c, &mut r).unwrap();
        let sup = sim.support();
        assert_eq!(sup.dim(), 0);
        assert_eq!(sup.base().to_string(), "101");
    }

    #[test]
    fn support_with_sign_structure() {
        // |-> state: H then Z. Distribution over {0,1} uniform still, but
        // combined with CX correlations signs must place the base correctly.
        let mut r = rng();
        let mut c = Circuit::new(2);
        c.x(0).h(0).cx(0, 1).h(0); // builds a state with a deterministic bit
        let sim = TableauSim::run(&c, &mut r).unwrap();
        let sup = sim.support();
        for s in sup.enumerate() {
            // Cross-check every enumerated point against collapse-based
            // measurement by replaying measurement on a clone.
            let mut clone = TableauSim::run(&c, &mut r).unwrap();
            let m: Vec<bool> = (0..2).map(|q| clone.measure(q, &mut r)).collect();
            let measured = Bits::from_bools(&m);
            assert!(
                sup.contains(&measured),
                "measured {measured} not in support {s}"
            );
        }
    }

    #[test]
    fn stabilizers_of_fresh_state() {
        let sim = TableauSim::new(2);
        let stabs: Vec<String> = sim.stabilizers().iter().map(|s| s.to_string()).collect();
        assert_eq!(stabs, vec!["+ZI", "+IZ"]);
        let destabs: Vec<String> = sim.destabilizers().iter().map(|s| s.to_string()).collect();
        assert_eq!(destabs, vec!["+XI", "+IX"]);
    }

    #[test]
    fn tableau_invariants_after_random_circuit() {
        let mut r = rng();
        for seed in 0..5u64 {
            let mut c = Circuit::new(6);
            let mut gen = StdRng::seed_from_u64(seed);
            for _ in 0..60 {
                match gen.random_range(0..5) {
                    0 => {
                        c.h(gen.random_range(0..6));
                    }
                    1 => {
                        c.s(gen.random_range(0..6));
                    }
                    2 => {
                        c.x(gen.random_range(0..6));
                    }
                    _ => {
                        let a = gen.random_range(0..6);
                        let mut b = gen.random_range(0..6);
                        if a == b {
                            b = (b + 1) % 6;
                        }
                        c.cx(a, b);
                    }
                }
            }
            let sim = TableauSim::run(&c, &mut r).unwrap();
            let stabs = sim.stabilizers();
            let destabs = sim.destabilizers();
            for i in 0..6 {
                for j in 0..6 {
                    assert!(
                        stabs[i].commutes_with(&stabs[j]),
                        "stabilizers must commute"
                    );
                    let should_commute = i != j;
                    assert_eq!(
                        destabs[i].commutes_with(&stabs[j]),
                        should_commute,
                        "destab {i} vs stab {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn non_clifford_circuit_rejected() {
        let mut r = rng();
        let mut c = Circuit::new(1);
        c.t(0);
        let err = TableauSim::run(&c, &mut r).unwrap_err();
        assert_eq!(err.op_index, 0);
        assert!(err.to_string().contains('T'));
    }

    #[test]
    fn noise_trajectory_deterministic_extremes() {
        let mut r = rng();
        let mut c = Circuit::new(1);
        c.add_noise(NoiseChannel::BitFlip(1.0), &[0]);
        let mut sim = TableauSim::run(&c, &mut r).unwrap();
        assert!(sim.measure(0, &mut r), "p=1 bit flip must flip");
        let mut c0 = Circuit::new(1);
        c0.add_noise(NoiseChannel::BitFlip(0.0), &[0]);
        let mut sim = TableauSim::run(&c0, &mut r).unwrap();
        assert!(!sim.measure(0, &mut r));
    }

    #[test]
    fn sample_all_matches_exact_support() {
        let mut r = rng();
        let mut c = Circuit::new(4);
        c.h(0).h(2).cx(0, 1).cz(1, 2).s(3).cx(2, 3);
        let sim = TableauSim::run(&c, &mut r).unwrap();
        let sup = sim.support();
        let points: std::collections::HashSet<String> =
            sup.enumerate().iter().map(|b| b.to_string()).collect();
        for s in sim.sample_all(500, &mut r) {
            assert!(points.contains(&s.to_string()), "sample outside support");
        }
    }

    #[test]
    fn frozen_sampling_matches_table_fast_path() {
        use rand::SeedableRng;
        // The frozen per-shot loop and the table fast path must consume
        // the RNG identically and produce the same tally — that contract
        // is what lets `TableauEngine::Reference` pin the frozen path
        // without perturbing outcome streams.
        let mut r = rng();
        let mut c = Circuit::new(6);
        c.h(0).h(3).cx(0, 1).cx(1, 2).cz(2, 3).s(4).cx(3, 4).h(5);
        let sim = TableauSim::run(&c, &mut r).unwrap();
        let sup = sim.support();
        for seed in [3u64, 99, 4242] {
            let mut ra = rand::rngs::StdRng::seed_from_u64(seed);
            let mut rb = rand::rngs::StdRng::seed_from_u64(seed);
            let mut fast = metrics::OutcomeCounts::new();
            let mut frozen = metrics::OutcomeCounts::new();
            let mut row_a = Bits::zeros(0);
            let mut row_b = Bits::zeros(0);
            sup.sample_counts_scratch(800, &mut ra, &mut fast, &mut row_a);
            sup.sample_counts_scratch_frozen(800, &mut rb, &mut frozen, &mut row_b);
            let a: Vec<(String, u64)> = fast
                .iter_sorted()
                .map(|(b, n)| (b.to_string(), n))
                .collect();
            let b: Vec<(String, u64)> = frozen
                .iter_sorted()
                .map(|(b, n)| (b.to_string(), n))
                .collect();
            assert_eq!(a, b, "seed {seed}");
            assert_eq!(
                ra.random::<u64>(),
                rb.random::<u64>(),
                "RNG positions diverged (seed {seed})"
            );
        }
    }
}
