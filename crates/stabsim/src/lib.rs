//! A fast stabilizer-circuit simulator — the Stim substitute in SuperSim-RS.
//!
//! Three engines:
//!
//! * [`TableauSim`] — Aaronson–Gottesman tableau with bit-packed columns:
//!   `O(n/64)`-per-gate Clifford evolution, collapse-style measurement,
//!   exact Pauli expectations and affine-subspace bulk sampling;
//! * [`FrameSim`] — Stim-style Pauli-frame batch simulator for noisy
//!   sampling (Pauli channels only, as stabilizer formalism requires);
//! * [`AffineSupport`] — the extracted computational-basis support of a
//!   stabilizer state, which makes 300-qubit sampling cheap.
//!
//! ```
//! use qcir::Circuit;
//! use stabsim::TableauSim;
//! use rand::SeedableRng;
//!
//! let mut ghz = Circuit::new(3);
//! ghz.h(0).cx(0, 1).cx(1, 2);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let sim = TableauSim::run(&ghz, &mut rng).unwrap();
//! assert_eq!(sim.support().dim(), 1); // uniform over {000, 111}
//! ```

mod frame;
mod packed;
mod reference_tableau;
mod tableau;

pub use frame::FrameSim;
pub use packed::PackedPauli;
#[doc(hidden)]
pub use reference_tableau::ReferenceTableauSim;
pub use tableau::{AffineSupport, TableauSim};

/// Error returned when a stabilizer engine encounters a non-Clifford gate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NonCliffordError {
    /// Index of the offending operation in the circuit.
    pub op_index: usize,
    /// Human-readable gate name.
    pub name: String,
}

impl std::fmt::Display for NonCliffordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "non-Clifford gate {} at operation index {}",
            self.name, self.op_index
        )
    }
}

impl std::error::Error for NonCliffordError {}
