//! A fast stabilizer-circuit simulator — the Stim substitute in SuperSim-RS.
//!
//! Three interchangeable tableau engines plus a frame simulator:
//!
//! | Engine | Layout | Gate cost | Measure cost | Use it for |
//! |---|---|---|---|---|
//! | [`TableauSim`] | row-major bit-planes | `O(n)` bit probes | `O(n·n/64)` word rowsums | balanced default: measurement/support-heavy fragment evaluation |
//! | [`SparseGateTableauSim`] | column-major bit-planes (inverse/Stim orientation) | `O(n/64)` words | `O(n·n/64)` bit-sliced collapse + lazy transpose | gate-dense circuits |
//! | [`ReferenceTableauSim`] | per-qubit `Vec<u64>` columns | `O(n/64)` words, scalar | row extraction per step | differential-testing oracle (`#[doc(hidden)]`) |
//! | [`FrameSim`] | Pauli frames, batch-major | — | — | noisy multi-shot sampling (Pauli channels only) |
//!
//! All three tableau engines produce **bit-identical outcome streams and
//! seeded-RNG consumption** — engine choice is purely a performance knob
//! (`cutkit::TableauEngine`), enforced by the `tableau_engine_parity`
//! suite. [`AffineSupport`] — the extracted computational-basis support
//! of a stabilizer state — makes 300-qubit sampling cheap and is shared
//! verbatim by every engine.
//!
//! ```
//! use qcir::Circuit;
//! use stabsim::TableauSim;
//! use rand::SeedableRng;
//!
//! let mut ghz = Circuit::new(3);
//! ghz.h(0).cx(0, 1).cx(1, 2);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let sim = TableauSim::run(&ghz, &mut rng).unwrap();
//! assert_eq!(sim.support().dim(), 1); // uniform over {000, 111}
//! ```

mod frame;
mod packed;
mod reference_tableau;
mod sparse_gate;
mod tableau;

pub use frame::FrameSim;
pub use packed::PackedPauli;
#[doc(hidden)]
pub use reference_tableau::ReferenceTableauSim;
pub use sparse_gate::SparseGateTableauSim;
pub use tableau::{AffineSupport, TableauSim};

/// Error returned when a stabilizer engine encounters a non-Clifford gate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NonCliffordError {
    /// Index of the offending operation in the circuit.
    pub op_index: usize,
    /// Human-readable gate name.
    pub name: String,
}

impl std::fmt::Display for NonCliffordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "non-Clifford gate {} at operation index {}",
            self.name, self.op_index
        )
    }
}

impl std::error::Error for NonCliffordError {}
