//! Umbrella crate for the SuperSim-RS workspace.
//!
//! Re-exports the individual crates so that examples and integration tests
//! can use a single dependency. Library users should depend on the
//! individual crates ([`supersim`], [`qcir`], …) directly.

pub use cutkit;
pub use extstab;
pub use metrics;
pub use mpssim;
pub use qcir;
pub use qmath;
pub use stabsim;
pub use supersim;
pub use svsim;
pub use workloads;
