//! Quickstart: cut a near-Clifford circuit, simulate it with SuperSim, and
//! compare against exact statevector simulation — then reuse the cut plan
//! for a seed sweep on the batch-first API.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use metrics::Distribution;
use qcir::{Bits, Circuit};
use supersim::{ExecParams, SuperSim, SuperSimConfig};

fn main() {
    // A 4-qubit near-Clifford circuit: mostly Clifford gates, one T gate.
    let mut circuit = Circuit::new(4);
    circuit.h(0).cx(0, 1).cx(1, 2).cx(2, 3); // GHZ backbone (Clifford)
    circuit.t(2); // the single non-Clifford gate
    circuit.h(2).cz(2, 3).s(0); // more Clifford structure

    println!("circuit:\n{circuit}");
    println!(
        "clifford ops: {}, non-Clifford ops: {}",
        circuit.len() - circuit.non_clifford_count(),
        circuit.non_clifford_count()
    );

    // Stage 1 — plan: cut placement + fragment structure + variant
    // enumeration, built once and reusable across runs.
    // 5000 shots is the paper's default sampling budget.
    let sim = SuperSim::new(
        SuperSimConfig::builder()
            .shots(5000)
            .build()
            .expect("valid config"),
    );
    let plan = sim.plan(&circuit).expect("circuit cuts within budget");
    println!(
        "\nplanned: {} fragments ({} Clifford) joined by {} cuts; {} variants per execution",
        plan.num_fragments(),
        plan.clifford_fragments(),
        plan.num_cuts(),
        plan.num_variants()
    );

    // Stage 2 — execute: evaluate → MLFT → recombine against the plan.
    // (`sim.run(&circuit)` is exactly these two stages fused.)
    let result = sim.executor().run(&plan).expect("pipeline runs");
    let report = &result.report;
    println!(
        "stage times: cut {:?}, evaluate {:?}, recombine {:?}",
        report.cut_time, report.eval_time, report.recombine_time
    );

    // Compare the reconstructed distribution with exact simulation.
    let sv = svsim::StateVec::run(&circuit).expect("small circuit");
    let reference = Distribution::from_pairs(4, sv.distribution(1e-12));
    let reconstructed = result.distribution.as_ref().expect("joint available");

    println!("\noutcome   supersim   exact");
    for x in 0..16u64 {
        let b = Bits::from_u64(x, 4);
        let p = reconstructed.prob(&b);
        let e = reference.prob(&b);
        if p > 1e-3 || e > 1e-3 {
            println!("{b}      {p:.4}     {e:.4}");
        }
    }
    println!(
        "\nHellinger fidelity vs exact: {:.5}",
        reference.hellinger_fidelity(reconstructed)
    );

    // Stage 3 — sweep: the same plan re-executed for several tomography
    // seeds on one shared pool (the cutter never re-runs). Each point is
    // bit-identical to an independent `sim.run` with that seed.
    let points: Vec<ExecParams> = (1..=4)
        .map(|s| ExecParams::from_config(sim.config()).with_seed(s))
        .collect();
    let runs = sim.executor().run_sweep(&plan, &points);
    println!("\nseed sweep over one plan ({} points):", runs.len());
    for (point, run) in points.iter().zip(&runs) {
        let run = run.as_ref().expect("sweep point runs");
        let f = reference.hellinger_fidelity(run.distribution.as_ref().unwrap());
        println!("  seed {}: fidelity {f:.5}", point.seed);
    }
}
