//! Quickstart: cut a near-Clifford circuit, simulate it with SuperSim, and
//! compare against exact statevector simulation.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use metrics::Distribution;
use qcir::{Bits, Circuit};
use supersim::{SuperSim, SuperSimConfig};

fn main() {
    // A 4-qubit near-Clifford circuit: mostly Clifford gates, one T gate.
    let mut circuit = Circuit::new(4);
    circuit.h(0).cx(0, 1).cx(1, 2).cx(2, 3); // GHZ backbone (Clifford)
    circuit.t(2); // the single non-Clifford gate
    circuit.h(2).cz(2, 3).s(0); // more Clifford structure

    println!("circuit:\n{circuit}");
    println!(
        "clifford ops: {}, non-Clifford ops: {}",
        circuit.len() - circuit.non_clifford_count(),
        circuit.non_clifford_count()
    );

    // Run the SuperSim pipeline: cut → evaluate fragments → recombine.
    let sim = SuperSim::new(SuperSimConfig {
        shots: 5000, // the paper's default sampling budget
        ..SuperSimConfig::default()
    });
    let result = sim.run(&circuit).expect("pipeline runs");

    let report = &result.report;
    println!(
        "\ncut into {} fragments ({} Clifford) joined by {} cuts; {} fragment variants executed",
        report.num_fragments, report.clifford_fragments, report.num_cuts, report.num_variants
    );
    println!(
        "stage times: cut {:?}, evaluate {:?}, recombine {:?}",
        report.cut_time, report.eval_time, report.recombine_time
    );

    // Compare the reconstructed distribution with exact simulation.
    let sv = svsim::StateVec::run(&circuit).expect("small circuit");
    let reference = Distribution::from_pairs(4, sv.distribution(1e-12));
    let reconstructed = result.distribution.as_ref().expect("joint available");

    println!("\noutcome   supersim   exact");
    for x in 0..16u64 {
        let b = Bits::from_u64(x, 4);
        let p = reconstructed.prob(&b);
        let e = reference.prob(&b);
        if p > 1e-3 || e > 1e-3 {
            println!("{b}      {p:.4}     {e:.4}");
        }
    }
    println!(
        "\nHellinger fidelity vs exact: {:.5}",
        reference.hellinger_fidelity(reconstructed)
    );
}
