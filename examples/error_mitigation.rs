//! Cut-based error mitigation (paper §III-B, referencing Liu et al.,
//! "Classical simulators as quantum error mitigators via circuit cutting").
//!
//! A noisy "quantum computer" executes the full near-Clifford circuit and
//! suffers errors on every entangling gate. Cutting lets the Clifford bulk
//! of the same circuit run on a *noise-free classical simulator*, so only
//! the (here: zero) part delegated to hardware contributes errors — the
//! reconstruction acts as an error-mitigated estimate of the ideal
//! distribution.
//!
//! ```sh
//! cargo run --release --example error_mitigation
//! ```

use metrics::Distribution;
use qcir::{Circuit, NoiseChannel, OpKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use supersim::{SuperSim, SuperSimConfig};

/// Adds two-qubit depolarizing noise after every entangling gate — a toy
/// model of a noisy QC.
fn noisy_version(c: &Circuit, p: f64) -> Circuit {
    let mut out = Circuit::new(c.num_qubits());
    for op in c.ops() {
        out.push(op.clone());
        if let OpKind::Gate(g) = &op.kind {
            if g.arity() == 2 {
                let qs: Vec<usize> = op.qubits.iter().map(|q| q.index()).collect();
                out.add_noise(NoiseChannel::Depolarize2(p), &[qs[0], qs[1]]);
            }
        }
    }
    out
}

/// "Noisy hardware" execution: statevector trajectories with noise.
fn noisy_hardware_distribution(c: &Circuit, trajectories: usize) -> Distribution {
    let mut rng = StdRng::seed_from_u64(17);
    let n = c.num_qubits();
    let mut acc = Distribution::new(n);
    for _ in 0..trajectories {
        let sv = svsim::StateVec::run_noisy(c, &mut rng).expect("small circuit");
        for (b, p) in sv.distribution(1e-14) {
            acc.add(b, p / trajectories as f64);
        }
    }
    acc
}

fn main() {
    // The benchmark circuit: 6-qubit near-Clifford HWEA with one T gate.
    let w = workloads::hwea(6, 3, 1, 21);
    let ideal = {
        let sv = svsim::StateVec::run(&w.circuit).expect("small circuit");
        Distribution::from_pairs(6, sv.distribution(1e-13))
    };

    println!("6-qubit near-Clifford HWEA, one T gate, 2q-depolarizing noise model\n");
    println!("gate error   noisy-QC fidelity   cut-mitigated fidelity");
    for p in [0.002, 0.01, 0.03, 0.08] {
        let noisy = noisy_version(&w.circuit, p);
        let hardware = noisy_hardware_distribution(&noisy, 2000);
        let f_noisy = ideal.hellinger_fidelity(&hardware);

        // Mitigation: the same logical circuit, but the Clifford bulk runs
        // on the noise-free stabilizer simulator via cutting. (Here every
        // fragment is simulated, so only sampling error remains — the
        // limit case of the paper's mitigation argument.)
        let sim = SuperSim::new(
            SuperSimConfig::builder()
                .shots(20_000)
                .seed(3)
                .build()
                .expect("valid config"),
        );
        let mitigated = sim.run(&w.circuit).expect("pipeline runs");
        let f_cut = ideal.hellinger_fidelity(mitigated.distribution.as_ref().unwrap());

        println!("{p:<12.3}{f_noisy:<20.4}{f_cut:<20.4}");
    }
    println!("\nthe cut estimate is independent of the hardware error rate: every");
    println!("fragment ran on a classical simulator, so only sampling noise remains.");
}
