//! QEC-flavoured demo (paper §IV-A, Fig. 7): a phase-flip repetition-code
//! cycle under Pauli noise, plus a near-Clifford (1 T gate) variant cut and
//! simulated with SuperSim.
//!
//! Part 1 uses the Pauli-frame simulator (the Stim-style engine) to sweep
//! the physical phase-flip rate and report syndrome statistics.
//! Part 2 injects a T gate into the cycle — the "non-Clifford noise
//! modeling" direction the paper motivates — and shows SuperSim's cut
//! pipeline reproducing the exact distribution.
//!
//! ```sh
//! cargo run --release --example qec_repetition
//! ```

use metrics::Distribution;
use rand::rngs::StdRng;
use rand::SeedableRng;
use supersim::{SuperSim, SuperSimConfig};
use workloads::{phase_repetition, RepetitionConfig};

fn main() {
    // --- Part 1: noisy syndrome extraction with the frame simulator ---
    let d = 9; // data qubits; total width 2d-1 = 17
    println!(
        "phase repetition code: {d} data qubits, {} total",
        2 * d - 1
    );
    println!("\np_phase\tmean syndromes fired\tshots");
    let shots = 20_000;
    for &p in &[0.0, 0.01, 0.05, 0.1, 0.2] {
        let w = phase_repetition(RepetitionConfig {
            data_qubits: d,
            phase_noise: Some(p),
            t_gates: 0,
            seed: 1,
        });
        let mut rng = StdRng::seed_from_u64(33);
        let samples = stabsim::FrameSim::sample(&w.circuit, shots, &mut rng)
            .expect("Clifford circuit with Pauli noise");
        // Ancilla qubits are indices d..2d-1; a fired syndrome is a 1.
        let fired: f64 = samples
            .iter()
            .map(|s| (d..2 * d - 1).filter(|&q| s.get(q)).count() as f64)
            .sum::<f64>()
            / shots as f64;
        println!("{p:.2}\t{fired:.3}\t\t\t{shots}");
    }
    println!("(each phase flip on an interior data qubit fires two adjacent syndromes)");

    // --- Part 2: near-Clifford cycle through the SuperSim pipeline ---
    let d2 = 5;
    let w = phase_repetition(RepetitionConfig {
        data_qubits: d2,
        phase_noise: None,
        t_gates: 1,
        seed: 5,
    });
    let n = w.circuit.num_qubits();
    println!("\nnear-Clifford cycle: {d2} data qubits + 1 injected T gate");
    let sim = SuperSim::new(
        SuperSimConfig::builder()
            .shots(5000)
            .build()
            .expect("valid config"),
    );
    let result = sim.run(&w.circuit).expect("pipeline runs");
    println!(
        "fragments: {} ({} Clifford), cuts: {}",
        result.report.num_fragments, result.report.clifford_fragments, result.report.num_cuts
    );
    let sv = svsim::StateVec::run(&w.circuit).expect("narrow enough");
    let reference = Distribution::from_pairs(n, sv.distribution(1e-12));
    let dist = result.distribution.as_ref().expect("joint available");
    println!(
        "Hellinger fidelity vs exact statevector: {:.4}",
        reference.hellinger_fidelity(dist)
    );

    // The extended stabilizer's Metropolis sampler struggles here (the
    // paper's Fig. 7 annotation); show it for contrast.
    let ext = extstab::StabDecomp::run(&w.circuit, 4).expect("rank 2 fits");
    let mut rng = StdRng::seed_from_u64(9);
    let ext_samples = ext.sample_metropolis(5000, 16, &mut rng);
    let ext_dist = Distribution::from_samples(n, &ext_samples);
    println!(
        "extended stabilizer (Metropolis) fidelity:  {:.4}",
        reference.hellinger_fidelity(&ext_dist)
    );
}
