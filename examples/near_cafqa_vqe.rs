//! Near-CAFQA VQE ansatz initialization (paper §IV-B).
//!
//! CAFQA initializes a variational ansatz by searching over *Clifford*
//! parameter settings, which are classically simulable. The paper's
//! near-CAFQA extension enriches the search with a few non-Clifford (T)
//! gates — exactly the workload SuperSim accelerates.
//!
//! This example minimizes the energy of a transverse-field Ising chain
//!
//! ```text
//! H = -Σ Z_i Z_{i+1} - g Σ X_i
//! ```
//!
//! over the discrete CAFQA search space with a greedy coordinate descent,
//! evaluating every candidate with the SuperSim pipeline, then shows the
//! effect of T-gate enrichment on the reachable energy.
//!
//! ```sh
//! cargo run --release --example near_cafqa_vqe
//! ```

use qcir::Circuit;
use supersim::{SuperSim, SuperSimConfig};

const N: usize = 6;
const ROUNDS: usize = 2;
const G: f64 = 0.7; // transverse field strength

/// Builds the HWEA ansatz with discrete quarter-turn parameters
/// (`params[i] ∈ 0..4` meaning `k·π/2`) and an optional T-gate layer.
fn ansatz(params: &[u8], t_qubit: Option<usize>) -> Circuit {
    let mut c = Circuit::new(N);
    let mut idx = 0;
    for _ in 0..ROUNDS {
        for q in 0..N {
            c.ry(q, f64::from(params[idx]) * std::f64::consts::FRAC_PI_2);
            c.rz(q, f64::from(params[idx + 1]) * std::f64::consts::FRAC_PI_2);
            idx += 2;
        }
        for q in 0..N - 1 {
            c.cx(q, q + 1);
        }
    }
    if let Some(q) = t_qubit {
        // S·H·T·H·S† is a Y-axis π/4 rotation: one non-Clifford gate plus
        // free Clifford conjugation. Unlike a bare T (diagonal, inert on
        // computational-basis states) this tilts ⟨Z⟩ into ⟨X⟩ — exactly the
        // trade the transverse-field term rewards.
        c.sdg(q);
        c.h(q);
        c.t(q);
        c.h(q);
        c.s(q);
    }
    for q in 0..N {
        c.ry(q, f64::from(params[idx]) * std::f64::consts::FRAC_PI_2);
        idx += 1;
    }
    c
}

/// Number of discrete parameters of the ansatz.
const NUM_PARAMS: usize = ROUNDS * 2 * N + N;

/// Measures `<H>` with one two-circuit SuperSim batch: the Z-basis
/// circuit (for the ZZ couplings) and the same ansatz with a final
/// Hadamard layer (for the X fields). Both measurement bases of one
/// candidate flow through one shared worker pool — the VQE cost function
/// is itself a (small) batch, the shape `run_batch` is built for.
fn energy(sim: &SuperSim, params: &[u8], t_qubit: Option<usize>) -> f64 {
    let zz_circuit = ansatz(params, t_qubit);
    // X fields: rotate X into Z with a final Hadamard layer, then read
    // single-qubit Z observables.
    let mut x_circuit = ansatz(params, t_qubit);
    for q in 0..N {
        x_circuit.h(q);
    }
    let mut runs = sim.run_batch(&[zz_circuit, x_circuit]).into_iter();
    let z_run = runs.next().unwrap().expect("pipeline runs");
    let x_run = runs.next().unwrap().expect("pipeline runs");
    // ZZ couplings: directly reconstructed Z-string observables — this
    // path needs no joint distribution, so it scales to hundreds of
    // qubits.
    let zz: f64 = (0..N - 1).map(|q| z_run.expectation_z(&[q, q + 1])).sum();
    let x: f64 = (0..N).map(|q| x_run.expectation_z(&[q])).sum();
    -zz - G * x
}

/// Greedy coordinate descent over the discrete parameter space, starting
/// from `start` (or all zeros).
fn optimize(sim: &SuperSim, t_qubit: Option<usize>, start: Option<&[u8]>) -> (Vec<u8>, f64) {
    let mut params = start.map_or_else(|| vec![0u8; NUM_PARAMS], <[u8]>::to_vec);
    let mut best = energy(sim, &params, t_qubit);
    for _sweep in 0..2 {
        for i in 0..NUM_PARAMS {
            let original = params[i];
            for candidate in 0..4u8 {
                if candidate == original {
                    continue;
                }
                params[i] = candidate;
                let e = energy(sim, &params, t_qubit);
                if e < best - 1e-9 {
                    best = e;
                } else {
                    params[i] = original;
                }
            }
        }
    }
    (params, best)
}

fn main() {
    // CAFQA evaluation is exact Clifford simulation.
    let sim = SuperSim::new(
        SuperSimConfig::builder()
            .exact(true)
            .build()
            .expect("valid config"),
    );

    println!("TFIM chain: n={N}, g={G}, HWEA rounds={ROUNDS}");
    println!("searching Clifford (CAFQA) parameter space...");
    let (clifford_params, e_clifford) = optimize(&sim, None, None);
    println!("  best Clifford energy:      {e_clifford:.6}");

    println!("enriching with one T gate and re-optimizing (near-CAFQA)...");
    let mut best_t = f64::INFINITY;
    let mut best_q = 0;
    for q in 0..N {
        let (_, e) = optimize(&sim, Some(q), Some(&clifford_params));
        if e < best_t {
            best_t = e;
            best_q = q;
        }
    }
    println!("  best near-Clifford energy: {best_t:.6} (T on qubit {best_q})");

    // Exact diagonalization reference (n is small): power iteration on
    // -H via repeated statevector circuits would be overkill; instead use
    // the known bound E₀ ≥ -(N-1) - G·N and report the gap closed.
    if best_t < e_clifford - 1e-9 {
        println!(
            "  → the T gate enriched the ansatz beyond the Clifford space (Δ = {:.6})",
            e_clifford - best_t
        );
    } else {
        println!("  → for this instance the Clifford optimum already saturates the ansatz");
    }
}
