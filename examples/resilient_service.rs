//! Resilient batch service demo: one flaky job (transient faults on its
//! first two attempts) and one oversized job (rejected by admission
//! control) submitted together — the resilience layer retries the first
//! to success and degrades the second along an error-budget ladder
//! instead of failing it, while the healthy jobs run exactly once.
//!
//! ```sh
//! cargo run --release --example resilient_service
//! ```

use qcir::Circuit;
use std::sync::Arc;
use supersim::{
    AdmissionPolicy, BreakerPolicy, DegradationPolicy, FaultKind, FaultPlan, JobStatus,
    ResiliencePolicy, Stage, SuperSim, SuperSimConfig,
};

fn main() {
    // The incoming batch: two healthy circuits, one deep circuit whose
    // exact recombination sweep is the most expensive (our "oversized"
    // tenant), and a near-Clifford circuit we will make flaky.
    let mut flaky = Circuit::new(2);
    flaky.h(0).t(0).cx(0, 1).h(1).t(1).h(0);
    let circuits = vec![
        workloads::ghz(6),                    // 0: healthy (pure Clifford)
        flaky,                                // 1: transient faults below
        workloads::hwea(5, 2, 1, 41).circuit, // 2: deep, many cuts
        workloads::hwea(4, 1, 2, 44).circuit, // 3: deep, many cuts
    ];

    // Size the admission budget to reject exactly the most expensive
    // plan — the service is "full" for that tenant.
    let probe = SuperSim::new(SuperSimConfig::default());
    let costs: Vec<u64> = circuits
        .iter()
        .map(|c| probe.plan(c).expect("plans").cost().sweep_assignments)
        .collect();
    let max_sweep = *costs.iter().max().unwrap();
    let oversized = costs.iter().position(|&c| c == max_sweep).unwrap();
    println!(
        "per-job sweep assignments: {costs:?} (admission limit {}; job {oversized} oversized)",
        max_sweep - 1
    );

    // Chaos: the flaky job's first evaluation chunk fails on attempts 1
    // and 2, then passes — a worker that recovers, not a broken circuit.
    let config = SuperSimConfig {
        shots: 400,
        seed: 7,
        faults: Some(Arc::new(FaultPlan::new().inject(
            1,
            Stage::Eval,
            0,
            FaultKind::FailNTimes(2),
        ))),
        admission: AdmissionPolicy {
            max_sweep_assignments: Some(max_sweep - 1),
            ..AdmissionPolicy::default()
        },
        ..SuperSimConfig::default()
    };

    // The resilience policy: 3 attempts with deterministic jittered
    // backoff, an error-budget ladder for load shedding, and a per-plan
    // circuit breaker guarding enqueue.
    let policy = ResiliencePolicy::new()
        .with_degradation(DegradationPolicy::new(vec![0.25, 0.5]).expect("valid ladder"))
        .with_breaker(BreakerPolicy::default());

    let sim = SuperSim::new(config);
    let outcome = sim.run_batch_resilient(&circuits, policy);

    println!("\nper-job outcomes:");
    for (i, status) in outcome.statuses().iter().enumerate() {
        match status {
            JobStatus::Ok { attempts } => println!("  job {i}: ok after {attempts} attempt(s)"),
            JobStatus::Failed { attempts } => {
                println!("  job {i}: FAILED after {attempts} attempt(s)")
            }
        }
    }

    println!("\noperator reports:");
    for i in 0..outcome.len() {
        match outcome.result(i) {
            Ok(run) => {
                println!("--- job {i} ---");
                for line in run.report.render_summary().lines() {
                    println!("  {line}");
                }
            }
            Err(e) => println!("--- job {i} ---\n  error: {e}"),
        }
    }

    // The flaky job retried to success; the oversized job shed a bounded
    // amount of accuracy instead of failing.
    let flaky_run = outcome.result(1).as_ref().expect("retried to success");
    assert_eq!(
        flaky_run.report.attempts, 3,
        "two transient failures + success"
    );
    let shed_run = outcome
        .result(oversized)
        .as_ref()
        .expect("degraded to success");
    let budget = shed_run.report.degraded_budget.expect("ladder applied");
    println!(
        "\njob {oversized} was admitted at error budget {budget} \
         (realized L1 bound {:.3e}, {} assignments skipped)",
        shed_run.report.recombine_error_bound, shed_run.report.assignments_skipped
    );
    assert!(outcome.all_ok(), "every job must complete");
    println!("\nall {} jobs completed; no work was lost.", outcome.len());
}
