//! SupercheQ-IE quantum fingerprinting (paper §IV-D).
//!
//! Each "file" (a sequence of updates) is incrementally encoded into a
//! stabilizer state by appending a random Clifford layer per update. Two
//! files are equal iff their fingerprint states coincide — and because the
//! encoding is all-Clifford, the comparison runs in polynomial time on the
//! stabilizer simulator even for hundreds of qubits:
//!
//! run `E_A` (encode file A) followed by `E_B†` (decode with file B); the
//! result is `|0…0⟩` exactly when the fingerprints match, which the
//! tableau's support reveals deterministically.
//!
//! ```sh
//! cargo run --release --example fingerprinting
//! ```

use qcir::Circuit;
use rand::rngs::StdRng;
use rand::SeedableRng;
use stabsim::TableauSim;

/// Returns `true` when the two update sequences produce identical
/// fingerprint states on `n` qubits.
fn fingerprints_equal(n: usize, file_a: &[u64], file_b: &[u64]) -> bool {
    let encode_a = workloads::supercheq_ie(n, file_a);
    let encode_b = workloads::supercheq_ie(n, file_b);
    let mut test = Circuit::new(n);
    test.append(&encode_a);
    test.append(&encode_b.adjoint());
    let mut rng = StdRng::seed_from_u64(0);
    let sim = TableauSim::run(&test, &mut rng).expect("Clifford circuit");
    let support = sim.support();
    // |ψ⟩ = |0…0⟩ iff the measurement distribution is the single point 0.
    support.dim() == 0 && support.base().count_ones() == 0
}

fn main() {
    let n = 128; // fingerprint register width — far beyond dense simulation
    println!("SupercheQ-IE fingerprinting on {n} qubits\n");

    let file_v1: Vec<u64> = vec![0xA11CE, 0xB0B, 0xC0FFEE, 0xD00D];
    let mut file_v1_copy = file_v1.clone();
    let mut file_v2 = file_v1.clone();
    file_v2[2] = 0xDECAF; // one changed update
    let mut file_swapped = file_v1.clone();
    file_swapped.swap(1, 2); // same updates, different order

    let t0 = std::time::Instant::now();
    println!(
        "identical files:          equal = {}",
        fingerprints_equal(n, &file_v1, &file_v1_copy)
    );
    println!(
        "one update changed:       equal = {}",
        fingerprints_equal(n, &file_v1, &file_v2)
    );
    println!(
        "updates reordered:        equal = {}",
        fingerprints_equal(n, &file_v1, &file_swapped)
    );
    // Incrementality: extending a fingerprint does not require re-encoding.
    file_v1_copy.push(0xFEED);
    let mut extended = file_v1.clone();
    extended.push(0xFEED);
    println!(
        "both extended by +1 update: equal = {}",
        fingerprints_equal(n, &extended, &file_v1_copy)
    );
    println!(
        "\nall four checks in {:?} — {n}-qubit states compared exactly, no sampling",
        t0.elapsed()
    );
}
