//! QAOA MaxCut on the Sherrington–Kirkpatrick model (paper §IV-B, Fig. 6),
//! on the batch-first API: the SK circuit is cut and planned **once**, then
//! a shot-budget sweep re-executes the plan — the re-run-same-cut-structure
//! shape SuperSim's plan/execute split amortizes.
//!
//! ```sh
//! cargo run --release --example qaoa_maxcut
//! ```

use metrics::Distribution;
use qcir::Bits;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use supersim::{ExecParams, SuperSim, SuperSimConfig};

/// Expected cut value of a distribution over spin assignments for ±1
/// weights `w[i][j]`: cut(x) = Σ_{i<j, w≠0} w_ij · [x_i ≠ x_j].
fn expected_cut(dist: &Distribution, weights: &[Vec<f64>]) -> f64 {
    let mut total = 0.0;
    for (bits, p) in dist.iter() {
        let mut cut = 0.0;
        for (i, row) in weights.iter().enumerate() {
            for (j, &w) in row.iter().enumerate().skip(i + 1) {
                if bits.get(i) != bits.get(j) {
                    cut += w;
                }
            }
        }
        total += p * cut;
    }
    total
}

fn main() {
    let n = 10;
    let seed = 11;

    // SK instance: ±1 weights on the complete graph. Generated with the
    // same seed the workload generator uses so circuit and weights match.
    let mut wrng = StdRng::seed_from_u64(seed);
    let workload = workloads::qaoa_sk(n, 1, 1, seed);
    let mut weights = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let w: f64 = if wrng.random::<bool>() { 1.0 } else { -1.0 };
            weights[i][j] = w;
        }
    }

    println!(
        "SK MaxCut QAOA: n={n}, 1 round, all-to-all couplings, {} ops, 1 T gate",
        workload.circuit.len()
    );

    // Exact statevector reference for the sweep's fidelity column.
    let t1 = std::time::Instant::now();
    let sv = svsim::StateVec::run(&workload.circuit).expect("n is small");
    let sv_time = t1.elapsed();
    let reference = Distribution::from_pairs(n, sv.distribution(1e-12));
    let cut_exact = expected_cut(&reference, &weights);

    // Plan once; sweep the tomography shot budget over the same plan.
    let sim = SuperSim::new(
        SuperSimConfig::builder()
            .seed(1)
            .build()
            .expect("valid config"),
    );
    let t0 = std::time::Instant::now();
    let plan = sim.plan(&workload.circuit).expect("circuit cuts");
    let plan_time = t0.elapsed();
    println!(
        "\nplanned once in {plan_time:?}: {} fragments, {} cuts, {} variants per execution",
        plan.num_fragments(),
        plan.num_cuts(),
        plan.num_variants()
    );

    let budgets = [250usize, 1000, 5000];
    let points: Vec<ExecParams> = budgets
        .iter()
        .map(|&shots| ExecParams::from_config(sim.config()).with_shots(shots))
        .collect();
    let t2 = std::time::Instant::now();
    let runs = sim.executor().run_sweep(&plan, &points);
    let sweep_time = t2.elapsed();

    println!("\nshots   expected cut   fidelity");
    let mut best_run = None;
    for (point, run) in points.iter().zip(&runs) {
        let run = run.as_ref().expect("sweep point runs");
        let dist = run.distribution.as_ref().expect("joint available");
        let cut = expected_cut(dist, &weights);
        let fidelity = reference.hellinger_fidelity(dist);
        println!("{:>5}   {cut:>12.4}   {fidelity:.4}", point.shots);
        best_run = Some(run);
    }
    println!(
        "\nexpected cut (exact statevector):   {cut_exact:.4}  [{sv_time:?}]\n\
         sweep of {} budgets over one plan:  [{sweep_time:?} total]",
        budgets.len()
    );

    // Best single sample drawn from the highest-budget reconstruction.
    let dist = best_run
        .and_then(|r| r.distribution.as_ref())
        .expect("joint available");
    let mut rng = StdRng::seed_from_u64(2);
    let best = dist
        .sample(200, &mut rng)
        .into_iter()
        .map(|b| {
            let mut cut = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    if b.get(i) != b.get(j) {
                        cut += weights[i][j];
                    }
                }
            }
            (b, cut)
        })
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .expect("samples drawn");
    let (assignment, value): (Bits, f64) = best;
    println!("best sampled cut: {value:.1} from assignment {assignment}");
}
