//! QAOA MaxCut on the Sherrington–Kirkpatrick model (paper §IV-B, Fig. 6).
//!
//! Builds the all-to-all SK QAOA circuit at Clifford angles with one
//! injected T gate, evaluates the expected cut value with SuperSim, and
//! cross-checks against the exact statevector simulator.
//!
//! ```sh
//! cargo run --release --example qaoa_maxcut
//! ```

use metrics::Distribution;
use qcir::Bits;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use supersim::{SuperSim, SuperSimConfig};

/// Expected cut value of a distribution over spin assignments for ±1
/// weights `w[i][j]`: cut(x) = Σ_{i<j, w≠0} w_ij · [x_i ≠ x_j].
fn expected_cut(dist: &Distribution, weights: &[Vec<f64>]) -> f64 {
    let mut total = 0.0;
    for (bits, p) in dist.iter() {
        let mut cut = 0.0;
        for (i, row) in weights.iter().enumerate() {
            for (j, &w) in row.iter().enumerate().skip(i + 1) {
                if bits.get(i) != bits.get(j) {
                    cut += w;
                }
            }
        }
        total += p * cut;
    }
    total
}

fn main() {
    let n = 10;
    let seed = 11;

    // SK instance: ±1 weights on the complete graph. Generated with the
    // same seed the workload generator uses so circuit and weights match.
    let mut wrng = StdRng::seed_from_u64(seed);
    let workload = workloads::qaoa_sk(n, 1, 1, seed);
    let mut weights = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let w: f64 = if wrng.random::<bool>() { 1.0 } else { -1.0 };
            weights[i][j] = w;
        }
    }

    println!(
        "SK MaxCut QAOA: n={n}, 1 round, all-to-all couplings, {} ops, 1 T gate",
        workload.circuit.len()
    );

    let sim = SuperSim::new(SuperSimConfig {
        shots: 5000,
        seed: 1,
        ..SuperSimConfig::default()
    });
    let t0 = std::time::Instant::now();
    let result = sim.run(&workload.circuit).expect("pipeline runs");
    let supersim_time = t0.elapsed();
    let dist = result.distribution.as_ref().expect("joint available");
    let cut_supersim = expected_cut(dist, &weights);

    let t1 = std::time::Instant::now();
    let sv = svsim::StateVec::run(&workload.circuit).expect("n is small");
    let sv_time = t1.elapsed();
    let reference = Distribution::from_pairs(n, sv.distribution(1e-12));
    let cut_exact = expected_cut(&reference, &weights);

    println!(
        "\nfragments: {}, cuts: {}",
        result.report.num_fragments, result.report.num_cuts
    );
    println!("expected cut (SuperSim, 5000 shots/variant): {cut_supersim:.4}  [{supersim_time:?}]");
    println!("expected cut (exact statevector):            {cut_exact:.4}  [{sv_time:?}]");
    println!(
        "Hellinger fidelity: {:.4}",
        reference.hellinger_fidelity(dist)
    );

    // Best single sample drawn from the reconstruction.
    let mut rng = StdRng::seed_from_u64(2);
    let best = dist
        .sample(200, &mut rng)
        .into_iter()
        .map(|b| {
            let mut cut = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    if b.get(i) != b.get(j) {
                        cut += weights[i][j];
                    }
                }
            }
            (b, cut)
        })
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .expect("samples drawn");
    let (assignment, value): (Bits, f64) = best;
    println!("best sampled cut: {value:.1} from assignment {assignment}");
}
