//! Scaling demo (paper Fig. 5): simulate a 250-qubit near-Clifford HWEA
//! circuit — far beyond any dense simulator — in seconds.
//!
//! ```sh
//! cargo run --release --example scaling_demo
//! ```

use supersim::{SuperSim, SuperSimConfig};

fn main() {
    for n in [100usize, 175, 250] {
        let w = workloads::hwea(n, 5, 1, n as u64);
        let sim = SuperSim::new(
            SuperSimConfig::builder()
                .shots(5000)
                .build()
                .expect("valid config"),
        );
        let t0 = std::time::Instant::now();
        let result = sim.run(&w.circuit).expect("pipeline runs");
        let elapsed = t0.elapsed();
        println!(
            "n={n:3}: {} ops, {} fragments, {} cuts, {} variants → {elapsed:?}",
            w.circuit.len(),
            result.report.num_fragments,
            result.report.num_cuts,
            result.report.num_variants,
        );
        // Spot-check a few marginals (always available at this scale; the
        // joint distribution over 2^250 outcomes is of course withheld).
        let shown: Vec<String> = result.marginals[..4]
            .iter()
            .enumerate()
            .map(|(q, m)| format!("q{q}: p(1)={:.3}", m[1]))
            .collect();
        println!("   marginals: {} ...", shown.join(", "));
        assert!(result.marginals.len() == n);
    }
    println!("\n(dense statevector simulation of 250 qubits would need 2^250 amplitudes)");
}
